"""Cross-cutting metric properties of the TED implementations.

These hypothesis tests treat the TED stack as a black box and assert the
mathematical facts the joins rely on: TED is a metric, it is bounded by
edit-script length (upper) and by every published filter bound (lower), and
the three implementations are interchangeable.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ted.api import ted
from repro.ted.bounds import composite_lower_bound, trivial_upper_bound
from repro.ted.rted import ted_hybrid
from repro.ted.simple import ted_reference
from repro.ted.zhang_shasha import zhang_shasha
from repro.tree.edits import random_script
from tests.conftest import LABELS, trees


@given(trees(max_size=7), trees(max_size=7), trees(max_size=7))
@settings(max_examples=30, deadline=None)
def test_triangle_inequality(t1, t2, t3):
    d12 = zhang_shasha(t1, t2)
    d23 = zhang_shasha(t2, t3)
    d13 = zhang_shasha(t1, t3)
    assert d13 <= d12 + d23


@given(trees(max_size=8), trees(max_size=8))
@settings(max_examples=40, deadline=None)
def test_implementations_interchangeable(t1, t2):
    reference = ted_reference(t1, t2)
    assert zhang_shasha(t1, t2) == reference
    assert ted_hybrid(t1, t2) == reference
    assert ted(t1, t2) == reference


@given(trees(max_size=9), trees(max_size=9))
@settings(max_examples=40, deadline=None)
def test_sandwiched_by_bounds(t1, t2):
    exact = zhang_shasha(t1, t2)
    assert composite_lower_bound(t1, t2) <= exact <= trivial_upper_bound(t1, t2)


@given(trees(max_size=7), st.integers(min_value=0, max_value=5),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_zero_iff_identical_and_script_bound(tree, k, seed):
    rng = random.Random(seed)
    edited, ops = random_script(tree, k, rng, LABELS)
    distance = zhang_shasha(tree, edited)
    assert distance <= len(ops)
    if distance == 0:
        # Zero distance must mean the trees are structurally identical.
        assert tree == edited
    if tree == edited:
        assert distance == 0
