"""Tests for the RTED-style shape-adaptive hybrid (repro.ted.rted)."""

from hypothesis import given, settings

from repro.ted.rted import decomposition_costs, mirror_tree, ted_hybrid
from repro.ted.zhang_shasha import AnnotatedTree, zhang_shasha
from repro.tree.node import Tree
from tests.conftest import make_random_tree, trees


class TestMirror:
    def test_children_reversed_recursively(self):
        tree = Tree.from_bracket("{a{b{x}{y}}{c}}")
        assert mirror_tree(tree).to_bracket() == "{a{c}{b{y}{x}}}"

    @given(trees(max_size=14))
    def test_involution(self, tree):
        assert mirror_tree(mirror_tree(tree)) == tree

    @given(trees(max_size=9), trees(max_size=9))
    @settings(max_examples=40, deadline=None)
    def test_mirroring_is_a_ted_isometry(self, t1, t2):
        assert zhang_shasha(t1, t2) == zhang_shasha(mirror_tree(t1), mirror_tree(t2))

    def test_deep_tree_mirroring(self):
        chain = "{x" * 3000 + "}" * 3000
        tree = Tree.from_bracket(chain)
        assert mirror_tree(tree).size == 3000


class TestDecompositionCosts:
    def test_subtree_first_comb_prefers_left_orientation(self):
        # Children ordered (subtree, leaf): only the trailing leaves have a
        # left sibling, so the keyroots are small and the plain (leftmost
        # path) Zhang-Shasha decomposition is cheap.
        comb = "{a{a{a{a{a}{l}}{l}}{l}}{l}}"
        t = Tree.from_bracket(comb)
        left, right = decomposition_costs(t, t)
        assert left < right

    def test_leaf_first_comb_prefers_mirrored_orientation(self):
        # Children ordered (leaf, subtree): every big subtree has a left
        # sibling and becomes a keyroot — the adversarial case for plain
        # Zhang-Shasha, fixed by mirroring (RTED's robustness scenario).
        comb = "{a{l}{a{l}{a{l}{a}}}}"
        t = Tree.from_bracket(comb)
        left, right = decomposition_costs(t, t)
        assert right < left

    def test_costs_factorize_over_keyroot_weights(self):
        t1 = Tree.from_bracket("{a{b}{c}}")
        t2 = Tree.from_bracket("{a{b{c}{d}}}")
        left, _ = decomposition_costs(t1, t2)
        assert left == AnnotatedTree(t1).keyroot_weight() * AnnotatedTree(t2).keyroot_weight()


class TestHybrid:
    @given(trees(max_size=10), trees(max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_matches_zhang_shasha(self, t1, t2):
        assert ted_hybrid(t1, t2) == zhang_shasha(t1, t2)

    def test_randomized_equivalence(self, rng):
        for _ in range(30):
            t1 = make_random_tree(rng, rng.randint(1, 14))
            t2 = make_random_tree(rng, rng.randint(1, 14))
            assert ted_hybrid(t1, t2) == zhang_shasha(t1, t2)

    def test_custom_rename_cost_forwarded(self):
        free = lambda a, b: 0
        t1 = Tree.from_bracket("{a{b}}")
        t2 = Tree.from_bracket("{x{y}}")
        assert ted_hybrid(t1, t2, rename_cost=free) == 0
