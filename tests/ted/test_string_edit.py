"""Tests for plain and banded string edit distance (repro.ted.string_edit)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ted.string_edit import string_edit_distance, string_edit_within

words = st.lists(st.sampled_from("abc"), max_size=12).map(tuple)


class TestFullDistance:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("", "abc", 3),
        ("abc", "", 3),
        ("abc", "abc", 0),
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("abc", "acb", 2),  # unit-cost model: no transposition
    ])
    def test_known_values(self, a, b, expected):
        assert string_edit_distance(a, b) == expected

    def test_works_on_label_sequences(self):
        a = ["node1", "node2", "node3"]
        b = ["node1", "other", "node3"]
        assert string_edit_distance(a, b) == 1

    @given(words, words)
    def test_symmetry(self, a, b):
        assert string_edit_distance(a, b) == string_edit_distance(b, a)

    @given(words, words, words)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        ab = string_edit_distance(a, b)
        bc = string_edit_distance(b, c)
        ac = string_edit_distance(a, c)
        assert ac <= ab + bc

    @given(words)
    def test_identity(self, a):
        assert string_edit_distance(a, a) == 0


class TestBanded:
    @given(words, words, st.integers(min_value=0, max_value=6))
    @settings(max_examples=200)
    def test_agrees_with_full_computation(self, a, b, tau):
        full = string_edit_distance(a, b)
        banded = string_edit_within(a, b, tau)
        if full <= tau:
            assert banded == full
        else:
            assert banded is None

    def test_negative_tau(self):
        assert string_edit_within("a", "a", -1) is None

    def test_length_difference_shortcut(self):
        assert string_edit_within("a", "abcdef", 2) is None

    def test_empty_sides(self):
        assert string_edit_within("", "ab", 2) == 2
        assert string_edit_within("ab", "", 1) is None
        assert string_edit_within("", "", 0) == 0

    def test_early_exit_on_long_dissimilar_strings(self):
        # Completely different symbols: the band saturates immediately.
        a = ["x"] * 500
        b = ["y"] * 500
        assert string_edit_within(a, b, 3) is None

    def test_randomized_against_full(self):
        rng = random.Random(7)
        for _ in range(200):
            a = [rng.choice("ab") for _ in range(rng.randint(0, 15))]
            b = [rng.choice("ab") for _ in range(rng.randint(0, 15))]
            tau = rng.randint(0, 5)
            full = string_edit_distance(a, b)
            expected = full if full <= tau else None
            assert string_edit_within(a, b, tau) == expected
