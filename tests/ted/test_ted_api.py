"""Tests for the public TED API (repro.ted.api)."""

import pytest

from repro.errors import InvalidParameterError
from repro.ted.api import TED_ALGORITHMS, ted, ted_within
from repro.tree.node import Tree


class TestTed:
    def test_default_algorithm(self):
        assert ted(Tree.from_bracket("{a{b}}"), Tree.from_bracket("{a}")) == 1

    @pytest.mark.parametrize("algorithm", sorted(TED_ALGORITHMS))
    def test_all_algorithms_agree(self, algorithm):
        t1 = Tree.from_bracket("{a{b{c}}{d}}")
        t2 = Tree.from_bracket("{a{b}{d{e}}}")
        assert ted(t1, t2, algorithm=algorithm) == 2

    def test_unknown_algorithm(self):
        with pytest.raises(InvalidParameterError, match="unknown TED algorithm"):
            ted(Tree.from_bracket("{a}"), Tree.from_bracket("{a}"), algorithm="nope")

    def test_rename_cost_passthrough(self):
        free = lambda a, b: 0
        assert ted(
            Tree.from_bracket("{a}"), Tree.from_bracket("{z}"), rename_cost=free
        ) == 0


class TestTedWithin:
    def test_within_threshold_returns_distance(self):
        a = Tree.from_bracket("{a{b}}")
        b = Tree.from_bracket("{a{b}{c}{d}}")
        assert ted_within(a, b, 2) == 2
        assert ted_within(a, b, 5) == 2

    def test_above_threshold_returns_none(self):
        a = Tree.from_bracket("{a{b}}")
        b = Tree.from_bracket("{a{b}{c}{d}}")
        assert ted_within(a, b, 1) is None

    def test_bounds_do_not_change_result(self, rng):
        from tests.conftest import make_random_tree

        for _ in range(30):
            t1 = make_random_tree(rng, rng.randint(1, 10))
            t2 = make_random_tree(rng, rng.randint(1, 10))
            for tau in (0, 1, 3):
                assert ted_within(t1, t2, tau, use_bounds=True) == ted_within(
                    t1, t2, tau, use_bounds=False
                )

    def test_negative_tau_rejected(self):
        with pytest.raises(InvalidParameterError):
            ted_within(Tree.from_bracket("{a}"), Tree.from_bracket("{a}"), -1)

    def test_tau_zero_identical_trees(self):
        tree = Tree.from_bracket("{a{b}{c}}")
        assert ted_within(tree, tree.copy(), 0) == 0
