"""Tests for the tau-banded Zhang–Shasha (repro.ted.cutoff).

The central property: for every tree pair and every tau, the banded DP
returns exactly ``zhang_shasha(t1, t2)`` when that distance is ``<= tau``
and the ``None`` sentinel otherwise.  Both directions matter — a band or
early-exit bug shows up as a too-large value or a spurious sentinel.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ted.cutoff import zhang_shasha_bounded
from repro.ted.zhang_shasha import AnnotatedTree, zhang_shasha
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest, make_random_tree, trees


def expected(t1, t2, tau, rename_cost=None):
    exact = zhang_shasha(t1, t2, rename_cost)
    return exact if exact <= tau else None


class TestAgainstUnbounded:
    @given(t1=trees(), t2=trees(), tau=st.integers(min_value=0, max_value=8))
    @settings(
        max_examples=200,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_property_agrees_with_zhang_shasha(self, t1, t2, tau):
        assert zhang_shasha_bounded(t1, t2, tau) == expected(t1, t2, tau)

    def test_clustered_forest_all_pairs_all_taus(self, rng):
        forest = make_cluster_forest(
            rng, clusters=3, cluster_size=3, base_size=10, max_edits=4
        )
        for i, t1 in enumerate(forest):
            for t2 in forest[i + 1:]:
                for tau in (0, 1, 2, 3, 5, 40):
                    assert zhang_shasha_bounded(t1, t2, tau) == expected(t1, t2, tau)

    @pytest.mark.parametrize("shape1,shape2", [
        # Combs and stars stress the keyroot structure (buffer reuse across
        # many keyroot pairs) from both extremes.
        ("{a{b{c{d{e{f}}}}}}", "{a{b{c{e{f}}}}}"),
        ("{a{b}{c}{d}{e}{f}}", "{a{b}{c}{d}{f}}"),
        ("{a{b{c}{d}}{e{f}{g}}}", "{a{b{c}{d}}{e{f}}}"),
    ])
    def test_shaped_trees(self, shape1, shape2):
        t1, t2 = Tree.from_bracket(shape1), Tree.from_bracket(shape2)
        for tau in range(0, 6):
            assert zhang_shasha_bounded(t1, t2, tau) == expected(t1, t2, tau)

    def test_custom_rename_cost(self, rng):
        double = lambda a, b: 0 if a == b else 2
        for _ in range(25):
            t1 = make_random_tree(rng, rng.randint(1, 10))
            t2 = make_random_tree(rng, rng.randint(1, 10))
            for tau in (0, 2, 4, 10):
                assert zhang_shasha_bounded(t1, t2, tau, double) == expected(
                    t1, t2, tau, double
                )


class TestSentinelAndEdges:
    def test_identical_trees(self):
        tree = Tree.from_bracket("{a{b{c}}{d}}")
        assert zhang_shasha_bounded(tree, tree.copy(), 0) == 0

    def test_size_filter_short_circuit(self):
        small = Tree.from_bracket("{a}")
        big = Tree.from_bracket("{a{b}{c}{d}{e}}")
        assert zhang_shasha_bounded(small, big, 3) is None

    def test_negative_tau_is_sentinel(self):
        tree = Tree.from_bracket("{a}")
        assert zhang_shasha_bounded(tree, tree.copy(), -1) is None

    def test_single_nodes(self):
        a, b = Tree.from_bracket("{a}"), Tree.from_bracket("{b}")
        assert zhang_shasha_bounded(a, b, 0) is None
        assert zhang_shasha_bounded(a, b, 1) == 1
        assert zhang_shasha_bounded(a, a.copy(), 0) == 0

    def test_accepts_annotated_trees(self, rng):
        t1 = make_random_tree(rng, 8)
        t2 = make_random_tree(rng, 9)
        a1, a2 = AnnotatedTree(t1), AnnotatedTree(t2)
        for tau in (0, 2, 5, 20):
            assert zhang_shasha_bounded(a1, a2, tau) == expected(t1, t2, tau)

    def test_huge_tau_equals_exact(self, rng):
        t1 = make_random_tree(rng, 12)
        t2 = make_random_tree(rng, 7)
        assert zhang_shasha_bounded(t1, t2, 1000) == zhang_shasha(t1, t2)

    def test_annotations_not_mutated_across_calls(self, rng):
        # The reused fd buffer lives inside one call; repeated calls on the
        # same annotations must keep agreeing.
        t1 = make_random_tree(rng, 10)
        t2 = make_random_tree(rng, 10)
        a1, a2 = AnnotatedTree(t1), AnnotatedTree(t2)
        first = [zhang_shasha_bounded(a1, a2, tau) for tau in (0, 1, 2, 3)]
        second = [zhang_shasha_bounded(a1, a2, tau) for tau in (0, 1, 2, 3)]
        assert first == second
