"""Tests for the PartSJ join driver (repro.core.join)."""

import pytest

from repro.baselines.nested_loop import nested_loop_join
from repro.core.join import PartSJConfig, partsj_join
from repro.core.subgraph import MatchSemantics
from repro.errors import InvalidParameterError
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest

SAFE_CONFIGS = [
    PartSJConfig(),  # defaults
    PartSJConfig(semantics="paper", postorder_filter="safe"),
    PartSJConfig(semantics="paper", postorder_filter="off"),
    PartSJConfig(semantics="safe", postorder_filter="off"),
    PartSJConfig(partition_strategy="random", postorder_filter="off"),
    PartSJConfig(postorder_numbering="binary", postorder_filter="off"),
]


class TestBasics:
    def test_identical_pair(self):
        trees = [Tree.from_bracket("{a{b}{c}}"), Tree.from_bracket("{a{b}{c}}")]
        result = partsj_join(trees, 0)
        assert result.pair_set() == {(0, 1)}
        assert result.pairs[0].distance == 0

    def test_empty_collection(self):
        result = partsj_join([], 2)
        assert result.pairs == []
        assert result.stats.results == 0

    def test_single_tree(self):
        assert partsj_join([Tree.from_bracket("{a}")], 3).pairs == []

    def test_pairs_canonical_and_sorted(self, sample_forest):
        result = partsj_join(sample_forest, 2)
        keys = [p.key() for p in result.pairs]
        assert keys == sorted(keys)
        assert all(i < j for i, j in keys)

    def test_invalid_tau(self, sample_forest):
        with pytest.raises(InvalidParameterError):
            partsj_join(sample_forest, -1)

    def test_invalid_tree_type(self):
        with pytest.raises(InvalidParameterError):
            partsj_join([Tree.from_bracket("{a}"), "nope"], 1)


class TestConfig:
    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            PartSJConfig(partition_strategy="zigzag").resolved()
        with pytest.raises(InvalidParameterError):
            PartSJConfig(postorder_filter="sometimes").resolved()
        with pytest.raises(InvalidParameterError):
            PartSJConfig(postorder_numbering="roman").resolved()
        with pytest.raises(ValueError):
            PartSJConfig(semantics="vibes").resolved()

    def test_string_fields_coerced(self):
        cfg = PartSJConfig(semantics="paper", postorder_filter="off").resolved()
        assert cfg.semantics is MatchSemantics.PAPER

    def test_paper_preset(self):
        cfg = PartSJConfig.paper().resolved()
        assert cfg.semantics is MatchSemantics.PAPER


class TestEquivalenceWithGroundTruth:
    @pytest.mark.parametrize("tau", [0, 1, 2, 3])
    def test_safe_configs_match_brute_force(self, rng, tau):
        trees = make_cluster_forest(
            rng, clusters=4, cluster_size=4, base_size=10, max_edits=3
        )
        truth = nested_loop_join(trees, tau).pair_set()
        for config in SAFE_CONFIGS:
            result = partsj_join(trees, tau, config)
            assert result.pair_set() == truth, config

    def test_distances_match_ground_truth(self, rng):
        trees = make_cluster_forest(
            rng, clusters=3, cluster_size=3, base_size=9, max_edits=2
        )
        truth = {p.key(): p.distance for p in nested_loop_join(trees, 2).pairs}
        ours = {p.key(): p.distance for p in partsj_join(trees, 2).pairs}
        assert ours == truth

    def test_published_window_is_subset_of_truth(self, rng):
        # The published postorder window may drop results (EXPERIMENTS.md
        # finding F1) but must never invent pairs.
        trees = make_cluster_forest(
            rng, clusters=5, cluster_size=4, base_size=10, max_edits=3
        )
        for tau in (1, 2):
            truth = nested_loop_join(trees, tau).pair_set()
            got = partsj_join(trees, tau, PartSJConfig.paper()).pair_set()
            assert got <= truth


class TestSmallTreePool:
    def test_tiny_trees_are_joined_exactly(self):
        # All trees smaller than 2*tau+1 = 7: the Lemma 2 filter cannot be
        # used at all; everything flows through the small pool.
        trees = [
            Tree.from_bracket("{a}"),
            Tree.from_bracket("{a{b}}"),
            Tree.from_bracket("{a{b}{c}}"),
            Tree.from_bracket("{x{y}}"),
            Tree.from_bracket("{a{b{c}}}"),
        ]
        tau = 3
        truth = nested_loop_join(trees, tau).pair_set()
        result = partsj_join(trees, tau)
        assert result.pair_set() == truth
        assert result.stats.extra["small_trees"] == len(trees)
        assert result.stats.extra["small_pool_pairs"] > 0

    def test_mixed_small_and_large(self, rng):
        from tests.conftest import make_random_tree

        trees = [make_random_tree(rng, size) for size in (2, 3, 4, 9, 10, 11, 20)]
        for tau in (1, 2, 3):
            truth = nested_loop_join(trees, tau).pair_set()
            assert partsj_join(trees, tau).pair_set() == truth

    def test_large_trees_never_enter_pool(self, sample_forest):
        result = partsj_join(sample_forest, 1)
        assert result.stats.extra["small_trees"] == 0


class TestStatistics:
    def test_counters_are_consistent(self, sample_forest):
        result = partsj_join(sample_forest, 2)
        stats = result.stats
        assert stats.method == "PRT"
        assert stats.tree_count == len(sample_forest)
        assert stats.results == len(result.pairs)
        # Each candidate is either rejected by a verifier bound (no DP) or
        # verified with exactly one banded DP.
        assert stats.ted_calls == stats.candidates - stats.extra["lb_filtered"]
        assert stats.results <= stats.candidates
        assert stats.extra["match_hits"] <= stats.extra["match_tests"]
        assert stats.extra["match_hits"] + stats.extra["small_pool_pairs"] == (
            stats.candidates
        )

    def test_partition_counters(self, sample_forest):
        tau = 1
        result = partsj_join(sample_forest, tau)
        extra = result.stats.extra
        partitioned = extra["partitioned_trees"]
        assert partitioned == len(sample_forest) - extra["small_trees"]
        assert extra["subgraphs_built"] == partitioned * (2 * tau + 1)
        assert extra["total_indexed_subgraphs"] == extra["subgraphs_built"]

    def test_each_pair_verified_once(self, rng):
        # Even when many subgraphs of the same pair match, TED runs once.
        trees = [Tree.from_bracket("{a{b}{c}{d}{e}{f}{g}}") for _ in range(3)]
        result = partsj_join(trees, 1)
        assert result.stats.ted_calls == 3  # the three pairs

    def test_summary_text(self, sample_forest):
        text = partsj_join(sample_forest, 1).stats.summary()
        assert "PRT" in text and "candidates" in text


class TestTauZero:
    def test_exact_duplicate_join(self, rng):
        base = Tree.from_bracket("{a{b{c}}{d}}")
        trees = [base.copy(), base.copy(), Tree.from_bracket("{a{b{c}}{e}}")]
        result = partsj_join(trees, 0)
        assert result.pair_set() == {(0, 1)}

    def test_tau_zero_matches_brute_force(self, rng):
        trees = make_cluster_forest(
            rng, clusters=3, cluster_size=4, base_size=8, max_edits=1
        )
        truth = nested_loop_join(trees, 0).pair_set()
        assert partsj_join(trees, 0).pair_set() == truth
