"""Tests for subgraph representation and matching (repro.core.subgraph)."""

import pytest

from repro.core.partition import extract_partition
from repro.core.subgraph import EPSILON, MatchSemantics, Subgraph
from repro.core.treecache import TreeCache
from repro.tree.binary import EdgeKind
from repro.tree.node import Tree


def subgraphs_of(text: str, delta: int):
    cache = TreeCache(Tree.from_bracket(text))
    return cache, extract_partition(cache, owner=0, delta=delta)


class TestTwigs:
    def test_twig_epsilon_for_missing_children(self):
        cache, subs = subgraphs_of("{a}", 1)
        assert subs[0].twig == ("a", EPSILON, EPSILON)

    def test_twig_uses_member_children_only(self):
        # Partition a chain so that a bridging edge dangles off a root.
        cache, subs = subgraphs_of("{a{b{c{d{e{f}}}}}}", 2)
        by_root = {sub.root.label: sub for sub in subs}
        assert "a" in by_root  # the residual holds the tree root
        residual = by_root["a"]
        # Its left child chain was cut somewhere: the twig of the cut
        # subgraph's root must not leak non-member labels.
        for sub in subs:
            for slot, child in (("left", sub.root.left), ("right", sub.root.right)):
                label = sub.twig[1] if slot == "left" else sub.twig[2]
                if child is None:
                    assert label == EPSILON
                elif not sub.is_member(child):
                    assert label == EPSILON
                else:
                    assert label == child.label

    def test_incoming_kinds(self):
        cache, subs = subgraphs_of("{a{b{x}{y}}{c{z}{w}}}", 3)
        kinds = {sub.incoming for sub in subs}
        assert EdgeKind.ROOT in kinds  # the residual
        assert kinds <= {EdgeKind.ROOT, EdgeKind.LEFT, EdgeKind.RIGHT}


class TestMatching:
    def test_whole_tree_matches_itself(self):
        cache, subs = subgraphs_of("{a{b}{c}}", 1)
        other = TreeCache(Tree.from_bracket("{a{b}{c}}"))
        assert subs[0].matches_at(other.binary.root, MatchSemantics.PAPER)
        assert subs[0].matches_at(other.binary.root, MatchSemantics.SAFE)

    def test_every_subgraph_matches_its_own_tree(self, rng):
        from tests.conftest import make_random_tree

        for _ in range(15):
            tree = make_random_tree(rng, rng.randint(7, 25))
            cache = TreeCache(tree)
            probe = TreeCache(tree.copy())
            delta = rng.randint(1, 5)
            if delta > tree.size:
                continue
            for sub in extract_partition(cache, 0, delta):
                # Locate the probe node corresponding to the subgraph root.
                target = probe.node_at_binary_number(
                    cache.binary_number(sub.root)
                )
                for semantics in MatchSemantics:
                    assert sub.matches_at(target, semantics), (
                        semantics, sub, tree.to_bracket(),
                    )

    def test_label_mismatch_rejected(self):
        cache, subs = subgraphs_of("{a{b}{c}}", 1)
        other = TreeCache(Tree.from_bracket("{a{b}{z}}"))
        assert not subs[0].matches_at(other.binary.root, MatchSemantics.SAFE)

    def test_safe_ignores_extra_children_paper_rejects(self):
        # Subgraph = whole tree {a{b}}; probe tree {a{b}{c}} has an extra
        # child where the subgraph has an empty slot (b.right).
        cache, subs = subgraphs_of("{a{b}}", 1)
        probe = TreeCache(Tree.from_bracket("{a{b}{c}}"))
        root = probe.binary.root
        assert subs[0].matches_at(root, MatchSemantics.SAFE)
        assert not subs[0].matches_at(root, MatchSemantics.PAPER)

    def test_paper_requires_incoming_category(self):
        # Cut {a{b{c{d}}}} (chain) into 2: one subgraph's root has a LEFT
        # incoming bridge.  Probing at a node with a RIGHT incoming edge
        # must fail under PAPER semantics but pass under SAFE.
        cache, subs = subgraphs_of("{a{b{c{d{e}}}}}", 2)
        cut = next(s for s in subs if s.incoming is not EdgeKind.ROOT)
        assert cut.incoming is EdgeKind.LEFT  # chains produce left bridges
        # Build a probe where the same chain segment hangs as a *sibling*:
        # in {r{x}{c...}} the chain c... gets a RIGHT incoming edge.
        chain_labels = []
        node = cut.root
        while node is not None and cut.is_member(node):
            chain_labels.append(node.label)
            node = node.left
        nested = "".join("{" + lab for lab in chain_labels) + "}" * len(chain_labels)
        probe = TreeCache(Tree.from_bracket("{r{x}" + nested + "}"))
        target = next(
            n for n in probe.binary_postorder
            if n.label == chain_labels[0] and n.incoming is EdgeKind.RIGHT
        )
        assert cut.matches_at(target, MatchSemantics.SAFE)
        assert not cut.matches_at(target, MatchSemantics.PAPER)

    def test_paper_requires_dangling_edge_to_exist(self):
        # Two-subgraph split of a chain: the residual has a dangling left
        # bridge under its deepest member.  A probe tree that ends exactly
        # where the bridge starts must fail strictly, pass safely.
        cache, subs = subgraphs_of("{a{b{c{d{e{f}}}}}}", 2)
        residual = next(s for s in subs if s.incoming is EdgeKind.ROOT)
        member_labels = sorted(
            cache.node_at_binary_number(n).label for n in residual.members
        )
        # Probe = just the residual part as a standalone chain.
        depth = len(member_labels)
        text = "".join("{" + lab for lab in ["a", "b", "c", "d", "e", "f"][:depth])
        text += "}" * depth
        probe = TreeCache(Tree.from_bracket(text))
        assert residual.matches_at(probe.binary.root, MatchSemantics.SAFE)
        assert not residual.matches_at(probe.binary.root, MatchSemantics.PAPER)


class TestSemanticsCoercion:
    def test_coerce_accepts_strings_and_instances(self):
        assert MatchSemantics.coerce("paper") is MatchSemantics.PAPER
        assert MatchSemantics.coerce(MatchSemantics.SAFE) is MatchSemantics.SAFE

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown match semantics"):
            MatchSemantics.coerce("bogus")
