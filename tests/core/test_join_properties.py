"""Property-based equivalence of PartSJ with the brute-force ground truth.

The single most important test in the repository: for random forests and
thresholds, every *sound* PartSJ configuration must return exactly the
brute-force join result.  The published postorder window (finding F1 in
EXPERIMENTS.md) is additionally checked for the weaker guarantee that it
only ever *under*-reports.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.nested_loop import nested_loop_join
from repro.core.join import PartSJConfig, partsj_join
from repro.tree.edits import random_script
from tests.conftest import LABELS, make_random_tree

SOUND_CONFIGS = [
    PartSJConfig(),
    PartSJConfig(semantics="paper", postorder_filter="safe"),
    PartSJConfig(semantics="safe", postorder_filter="off"),
    PartSJConfig(partition_strategy="random", postorder_filter="off", seed=11),
]

PUBLISHED_WINDOW = [
    PartSJConfig(semantics="paper", postorder_filter="paper"),
    PartSJConfig(semantics="safe", postorder_filter="paper"),
    PartSJConfig(
        semantics="paper", postorder_filter="paper", postorder_numbering="binary"
    ),
]


@st.composite
def clustered_forests(draw):
    """Random forests with enough near-duplicates to make joins non-trivial."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = random.Random(seed)
    clusters = draw(st.integers(min_value=1, max_value=3))
    trees = []
    for _ in range(clusters):
        base = make_random_tree(rng, rng.randint(4, 11))
        trees.append(base)
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            edited, _ = random_script(base, rng.randint(0, 4), rng, LABELS)
            trees.append(edited)
    return trees


@given(forest=clustered_forests(), tau=st.integers(min_value=0, max_value=4))
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_sound_configs_equal_brute_force(forest, tau):
    truth = nested_loop_join(forest, tau).pair_set()
    for config in SOUND_CONFIGS:
        assert partsj_join(forest, tau, config).pair_set() == truth, config


@given(forest=clustered_forests(), tau=st.integers(min_value=0, max_value=3))
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_published_window_never_over_reports(forest, tau):
    truth = nested_loop_join(forest, tau).pair_set()
    for config in PUBLISHED_WINDOW:
        got = partsj_join(forest, tau, config).pair_set()
        assert got <= truth, config


@given(forest=clustered_forests(), tau=st.integers(min_value=0, max_value=3))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_reported_distances_are_exact(forest, tau):
    truth = {p.key(): p.distance for p in nested_loop_join(forest, tau).pairs}
    got = {p.key(): p.distance for p in partsj_join(forest, tau).pairs}
    assert got == truth


def test_known_false_negative_of_published_window_documented():
    """Regression anchor for EXPERIMENTS.md finding F1.

    This is a concrete forest (found by random search during development)
    where the published window ``Delta' = tau - floor(k/2)`` misses a true
    result at ``tau = 1`` while every sound configuration reports it.  If a
    future change makes the published window exact on this input, the
    finding write-up must be revisited.
    """
    rng = random.Random(123)
    found_gap = False
    for _ in range(200):
        base = make_random_tree(rng, rng.randint(5, 10))
        forest = [base]
        for _ in range(rng.randint(2, 4)):
            edited, _ = random_script(base, rng.randint(0, 3), rng, LABELS)
            forest.append(edited)
        tau = rng.randint(1, 2)
        truth = nested_loop_join(forest, tau).pair_set()
        got = partsj_join(
            forest, tau, PartSJConfig(semantics="paper", postorder_filter="paper")
        ).pair_set()
        assert got <= truth
        if got != truth:
            found_gap = True
            # Sound configuration recovers the exact result on the same input.
            assert partsj_join(forest, tau).pair_set() == truth
            break
    assert found_gap, (
        "expected to find at least one false negative of the published "
        "window within 200 random forests (see EXPERIMENTS.md finding F1)"
    )
