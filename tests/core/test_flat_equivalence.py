"""Flat-array candidate engine vs. the frozen PR-1 reference.

The PR-2 rewrite (interned labels, packed index keys, bitmap subgraphs,
int-array matching, one index entry per subgraph) must be a pure
performance change: for every filter configuration, the join's pair sets
and exact distances must be identical to the pre-refactor object-graph
path, which is preserved verbatim in ``benchmarks/_legacy_candidates``.
Verification is shared between the two joins, so any disagreement is a
candidate-generation divergence.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from benchmarks._legacy_candidates import legacy_partsj_join
from repro.core.join import PartSJConfig, partsj_join
from repro.tree.edits import random_script
from tests.conftest import LABELS, make_random_tree

# Every (numbering x postorder-filter) combination, per the flat-array
# engine's contract: identical results under both postorder_numbering
# modes and all three postorder_filter settings.
CONFIGS = [
    PartSJConfig(postorder_numbering=numbering, postorder_filter=pfilter)
    for numbering in ("general", "binary")
    for pfilter in ("safe", "paper", "off")
] + [
    # The strict matching semantics exercise incoming-edge categories and
    # dangling/empty slots in the flat matcher.
    PartSJConfig(semantics="paper", postorder_filter="safe"),
    PartSJConfig(semantics="paper", postorder_filter="paper"),
]


def pair_list(pairs):
    return [(p.i, p.j, p.distance) for p in pairs]


@st.composite
def clustered_forests(draw):
    """Random forests with near-duplicates (the join's natural workload)."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = random.Random(seed)
    clusters = draw(st.integers(min_value=1, max_value=3))
    trees = []
    for _ in range(clusters):
        base = make_random_tree(rng, rng.randint(4, 12))
        trees.append(base)
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            edited, _ = random_script(base, rng.randint(0, 4), rng, LABELS)
            trees.append(edited)
    return trees


@given(forest=clustered_forests(), tau=st.integers(min_value=0, max_value=3))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_flat_engine_equals_legacy_reference(forest, tau):
    for config in CONFIGS:
        flat = partsj_join(forest, tau, config)
        legacy_pairs, _ = legacy_partsj_join(forest, tau, config)
        assert pair_list(flat.pairs) == pair_list(legacy_pairs), config


@pytest.mark.parametrize("tau", [1, 2])
def test_equivalence_on_clustered_forest(rng, tau):
    """Deterministic anchor: a denser forest than hypothesis generates."""
    from tests.conftest import make_cluster_forest

    forest = make_cluster_forest(
        rng, clusters=5, cluster_size=4, base_size=12, max_edits=3
    )
    for config in CONFIGS:
        flat = partsj_join(forest, tau, config)
        legacy_pairs, legacy_stats = legacy_partsj_join(forest, tau, config)
        assert pair_list(flat.pairs) == pair_list(legacy_pairs), config
        assert flat.stats.candidates == legacy_stats.candidates, config


def test_random_partition_strategy_matches_legacy(rng):
    """The ablation path shares the RNG draw sequence with PR 1."""
    from tests.conftest import make_cluster_forest

    forest = make_cluster_forest(
        rng, clusters=3, cluster_size=4, base_size=10, max_edits=3
    )
    config = PartSJConfig(
        partition_strategy="random", postorder_filter="off", seed=17
    )
    flat = partsj_join(forest, 2, config)
    legacy_pairs, _ = legacy_partsj_join(forest, 2, config)
    assert pair_list(flat.pairs) == pair_list(legacy_pairs)
