"""Tests for the per-tree probe cache (repro.core.treecache)."""

from repro.core.treecache import TreeCache
from repro.tree.lcrs import to_lcrs
from repro.tree.node import Tree
from tests.conftest import make_random_tree


class TestTreeCache:
    def test_binary_matches_standalone_transform(self, rng):
        tree = make_random_tree(rng, 25)
        cache = TreeCache(tree)
        assert cache.binary == to_lcrs(tree)
        assert cache.size == 25

    def test_binary_numbers_are_a_bijection(self, rng):
        tree = make_random_tree(rng, 30)
        cache = TreeCache(tree)
        numbers = [cache.binary_number(node) for node in cache.binary_postorder]
        assert numbers == list(range(1, 31))
        for number in range(1, 31):
            node = cache.node_at_binary_number(number)
            assert cache.binary_number(node) == number

    def test_general_postorder_matches_general_traversal(self):
        tree = Tree.from_bracket("{a{b{d}{e}}{c}}")
        cache = TreeCache(tree)
        # General postorder: d=1, e=2, b=3, c=4, a=5.  Look the labels up
        # through the binary twins.
        by_number = {
            cache.general_postorder(node): node.label
            for node in cache.binary_postorder
        }
        assert by_number == {1: "d", 2: "e", 3: "b", 4: "c", 5: "a"}

    def test_general_postorder_is_a_permutation(self, rng):
        tree = make_random_tree(rng, 40)
        cache = TreeCache(tree)
        numbers = sorted(
            cache.general_postorder(node) for node in cache.binary_postorder
        )
        assert numbers == list(range(1, 41))

    def test_root_has_max_number_in_both_orders(self, rng):
        tree = make_random_tree(rng, 20)
        cache = TreeCache(tree)
        root = cache.binary.root
        assert cache.binary_number(root) == 20
        assert cache.general_postorder(root) == 20

    def test_binary_and_general_numbering_can_differ(self):
        # {a{b{x}}{c}}: general postorder x=1,b=2,c=3,a=4.
        # Binary postorder: x's subtree... c comes before x's parent chain.
        tree = Tree.from_bracket("{a{b{x}}{c}}")
        cache = TreeCache(tree)
        pairs = {
            node.label: (cache.binary_number(node), cache.general_postorder(node))
            for node in cache.binary_postorder
        }
        assert pairs["a"] == (4, 4)
        # The two numberings agree on the root but differ somewhere else.
        assert any(b != g for b, g in pairs.values())
