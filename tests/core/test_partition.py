"""Tests for Algorithms 2 & 3 and partition extraction (repro.core.partition)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    extract_partition,
    extract_random_partition,
    max_min_size,
    min_partitionable_size,
    partitionable,
)
from repro.core.treecache import TreeCache
from repro.errors import InvalidParameterError, NotPartitionableError
from repro.tree.node import Tree
from tests.conftest import make_random_tree, trees


def brute_force_max_gamma(binary, delta: int) -> int:
    """Linear scan reference for MaxMinSize."""
    best = 0
    for gamma in range(1, binary.size // delta + 1):
        if partitionable(binary, delta, gamma):
            best = gamma
    return best


class TestPartitionable:
    def test_paper_figure9_example(self):
        # Figure 9 applies Algorithm 2 with delta=3, gamma=3 on an 11-node
        # binary tree and succeeds.  Our LC-RS of this general tree is a
        # different 11-node binary tree, but the figure's parameters remain
        # satisfiable for any 11-node tree with gamma=3 <= floor(11/3).
        tree = Tree.from_bracket("{l1{l2{l3{l4{l5}{l6}}}{l7{l8{l9{l10}}{l11}}}}}")
        cache = TreeCache(tree)
        assert partitionable(cache.binary, 3, 3)

    def test_figure8_narrative(self):
        # The paper's Figure 8 example: a binary tree where four 50-node
        # triangles hang as in the figure cannot be 3-partitioned evenly;
        # gamma is limited to ~50, not 67.  We model each triangle as a
        # left chain of 50 nodes.
        chain = lambda: "{t" + "{t" * 49 + "}" * 49 + "}"
        # s1, s2 under li; s3, s4 under lj (as general-tree children).
        text = "{li" + chain() + chain() + "{lj" + chain() + chain() + "}}"
        tree = Tree.from_bracket(text)
        assert tree.size == 202
        cache = TreeCache(tree)
        assert partitionable(cache.binary, 3, 50)
        assert not partitionable(cache.binary, 3, 67)

    def test_gamma_times_delta_exceeding_size_fails(self):
        cache = TreeCache(Tree.from_bracket("{a{b}{c}}"))
        assert not partitionable(cache.binary, 3, 2)

    def test_single_subgraph_always_possible(self, rng):
        tree = make_random_tree(rng, 17)
        cache = TreeCache(tree)
        assert partitionable(cache.binary, 1, 17)

    def test_gamma_one_with_delta_equal_size(self, rng):
        tree = make_random_tree(rng, 9)
        cache = TreeCache(tree)
        assert partitionable(cache.binary, 9, 1)

    def test_invalid_parameters(self):
        cache = TreeCache(Tree.from_bracket("{a{b}}"))
        with pytest.raises(InvalidParameterError):
            partitionable(cache.binary, 0, 1)
        with pytest.raises(InvalidParameterError):
            partitionable(cache.binary, 1, 0)
        with pytest.raises(NotPartitionableError):
            partitionable(cache.binary, 5, 1)  # delta > size


class TestMaxMinSize:
    @given(trees(max_size=24), st.integers(min_value=1, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_matches_linear_scan(self, tree, delta):
        if delta > tree.size:
            return
        binary = TreeCache(tree).binary
        assert max_min_size(binary, delta) == brute_force_max_gamma(binary, delta)

    def test_monotone_in_delta(self, rng):
        tree = make_random_tree(rng, 40)
        binary = TreeCache(tree).binary
        gammas = [max_min_size(binary, delta) for delta in range(1, 8)]
        assert gammas == sorted(gammas, reverse=True)

    def test_delta_one_returns_full_size(self, rng):
        tree = make_random_tree(rng, 13)
        assert max_min_size(TreeCache(tree).binary, 1) == 13

    def test_result_is_feasible_and_maximal(self, rng):
        for _ in range(20):
            tree = make_random_tree(rng, rng.randint(7, 45))
            delta = rng.randint(1, min(7, tree.size))
            binary = TreeCache(tree).binary
            gamma = max_min_size(binary, delta)
            assert partitionable(binary, delta, gamma)
            if gamma < binary.size // delta:
                assert not partitionable(binary, delta, gamma + 1)


def assert_valid_partition(cache, subgraphs, delta, gamma=None):
    """The structural invariants every extraction must satisfy."""
    assert len(subgraphs) == delta
    covered = set()
    for sub in subgraphs:
        assert sub.members, "empty subgraph"
        assert not (covered & sub.members), "overlapping subgraphs"
        covered |= sub.members
        if gamma is not None:
            assert sub.size >= gamma
        # The root is a member and carries the subgraph's postorder id.
        assert cache.binary_number(sub.root) in sub.members
        assert sub.incoming is sub.root.incoming
    assert covered == set(range(1, cache.size + 1)), "partition must cover the tree"
    ranks = [sub.rank for sub in subgraphs]
    assert ranks == list(range(1, delta + 1))
    ids = [sub.postorder_id for sub in subgraphs]
    assert ids == sorted(ids), "ranks must follow ascending postorder ids"


class TestExtraction:
    @given(trees(max_size=30), st.integers(min_value=1, max_value=9))
    @settings(max_examples=60, deadline=None)
    def test_maxmin_extraction_invariants(self, tree, delta):
        if delta > tree.size:
            return
        cache = TreeCache(tree)
        gamma = max_min_size(cache.binary, delta)
        subgraphs = extract_partition(cache, owner=0, delta=delta, gamma=gamma)
        assert_valid_partition(cache, subgraphs, delta, gamma)

    def test_gamma_defaults_to_maxmin(self, rng):
        tree = make_random_tree(rng, 21)
        cache = TreeCache(tree)
        explicit = extract_partition(
            cache, 0, 3, max_min_size(cache.binary, 3)
        )
        implicit = extract_partition(cache, 0, 3)
        assert [s.members for s in explicit] == [s.members for s in implicit]

    def test_components_are_connected(self, rng):
        # Every member other than the subgraph root must have its binary
        # parent inside the same subgraph.
        for _ in range(10):
            tree = make_random_tree(rng, rng.randint(9, 35))
            cache = TreeCache(tree)
            delta = rng.randint(2, 5)
            if delta > tree.size:
                continue
            for sub in extract_partition(cache, 0, delta):
                for number in sub.members:
                    node = cache.node_at_binary_number(number)
                    if node is sub.root:
                        continue
                    assert cache.binary_number(node.parent) in sub.members

    def test_infeasible_gamma_rejected(self):
        cache = TreeCache(Tree.from_bracket("{a{b}{c}{d}}"))
        with pytest.raises(NotPartitionableError):
            extract_partition(cache, 0, 2, gamma=4)

    def test_residual_contains_tree_root(self, rng):
        tree = make_random_tree(rng, 25)
        cache = TreeCache(tree)
        subgraphs = extract_partition(cache, 0, 5)
        last = max(subgraphs, key=lambda s: s.postorder_id)
        assert last.root is cache.binary.root

    def test_delta_too_large(self):
        cache = TreeCache(Tree.from_bracket("{a{b}}"))
        with pytest.raises(NotPartitionableError):
            extract_partition(cache, 0, 3)

    def test_binary_numbering_variant(self, rng):
        tree = make_random_tree(rng, 18)
        cache = TreeCache(tree)
        subs = extract_partition(cache, 0, 3, numbering="binary")
        for sub in subs:
            assert sub.postorder_id == cache.binary_number(sub.root)
        with pytest.raises(InvalidParameterError):
            extract_partition(cache, 0, 3, numbering="weird")


class TestRandomPartition:
    @given(trees(max_size=30), st.integers(min_value=1, max_value=9),
           st.integers(min_value=0, max_value=999))
    @settings(max_examples=60, deadline=None)
    def test_random_extraction_invariants(self, tree, delta, seed):
        if delta > tree.size:
            return
        cache = TreeCache(tree)
        subgraphs = extract_random_partition(
            cache, owner=0, delta=delta, rng=random.Random(seed)
        )
        assert_valid_partition(cache, subgraphs, delta)

    def test_random_partitions_vary_with_seed(self, rng):
        tree = make_random_tree(rng, 40)
        cache = TreeCache(tree)
        a = extract_random_partition(cache, 0, 5, random.Random(1))
        b = extract_random_partition(cache, 0, 5, random.Random(2))
        assert [s.members for s in a] != [s.members for s in b]


def test_min_partitionable_size():
    assert min_partitionable_size(0) == 1
    assert min_partitionable_size(1) == 3
    assert min_partitionable_size(3) == 7
