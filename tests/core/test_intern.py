"""Tests for label interning and packed twig keys (repro.core.intern)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intern import (
    DEFAULT_INTERNER,
    EPSILON,
    EPSILON_ID,
    MAX_LABEL_ID,
    LabelInterner,
    pack_twig,
    unpack_twig,
)
from repro.core.treecache import TreeCache
from repro.tree.node import Tree


class TestLabelInterner:
    def test_epsilon_is_id_zero(self):
        interner = LabelInterner()
        assert interner.intern(EPSILON) == EPSILON_ID
        assert interner.label(EPSILON_ID) == EPSILON
        assert len(interner) == 1

    def test_ids_are_dense_and_stable(self):
        interner = LabelInterner()
        a = interner.intern("a")
        b = interner.intern("b")
        assert (a, b) == (1, 2)
        assert interner.intern("a") == a  # idempotent
        assert len(interner) == 3  # epsilon + a + b

    def test_round_trip(self):
        interner = LabelInterner()
        for label in ("x", "y", "a longer label", "ümlaut", ""):
            assert interner.label(interner.intern(label)) == label

    def test_get_does_not_intern(self):
        interner = LabelInterner()
        assert interner.get("unseen") is None
        assert len(interner) == 1
        interner.intern("seen")
        assert interner.get("seen") == 1

    def test_contains(self):
        interner = LabelInterner()
        interner.intern("here")
        assert "here" in interner
        assert "gone" not in interner
        assert EPSILON in interner

    def test_default_interner_is_shared_by_caches(self):
        # Two independently built caches must agree on ids, otherwise
        # cross-tree twig comparisons would be meaningless.
        a = TreeCache(Tree.from_bracket("{q7{q8}}"))
        b = TreeCache(Tree.from_bracket("{q8{q7}}"))
        assert a.interner is b.interner is DEFAULT_INTERNER
        assert a.labels[a.size] == b.labels[1]  # both are "q7"

    def test_explicit_interner(self):
        interner = LabelInterner()
        cache = TreeCache(Tree.from_bracket("{a{b}}"), interner=interner)
        assert cache.interner is interner
        assert interner.get("a") is not None


class TestPackedTwigKeys:
    @given(
        st.integers(min_value=0, max_value=MAX_LABEL_ID),
        st.integers(min_value=0, max_value=MAX_LABEL_ID),
        st.integers(min_value=0, max_value=MAX_LABEL_ID),
    )
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, label, left, right):
        assert unpack_twig(pack_twig(label, left, right)) == (label, left, right)

    @given(
        st.tuples(
            st.integers(min_value=0, max_value=MAX_LABEL_ID),
            st.integers(min_value=0, max_value=MAX_LABEL_ID),
            st.integers(min_value=0, max_value=MAX_LABEL_ID),
        ),
        st.tuples(
            st.integers(min_value=0, max_value=MAX_LABEL_ID),
            st.integers(min_value=0, max_value=MAX_LABEL_ID),
            st.integers(min_value=0, max_value=MAX_LABEL_ID),
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_injective(self, twig_a, twig_b):
        if twig_a != twig_b:
            assert pack_twig(*twig_a) != pack_twig(*twig_b)

    def test_epsilon_components_pack_as_zero_bits(self):
        assert pack_twig(0, 0, 0) == 0
        key = pack_twig(5, 0, 0)
        assert unpack_twig(key) == (5, 0, 0)
        assert key == 5 << 42

    def test_key_matches_subgraph_twig(self):
        from repro.core.partition import extract_partition

        cache = TreeCache(Tree.from_bracket("{a{b}{c{d}{e}}{f}}"))
        for sub in extract_partition(cache, 0, 3):
            assert unpack_twig(sub.twig_key) == sub.twig_ids
            label = cache.interner.label
            assert sub.twig == tuple(label(i) for i in sub.twig_ids)

    def test_interner_overflow_guard(self):
        from repro.errors import InvalidParameterError

        interner = LabelInterner()
        interner._labels = [EPSILON] * (MAX_LABEL_ID + 1)  # simulate fullness
        with pytest.raises(InvalidParameterError, match="overflow"):
            interner.intern("one-too-many")


class TestStreamingInternerGrowth:
    """Interner growth during streaming must never invalidate filed keys.

    The streaming engine interns labels of every arriving tree into the
    same table whose earlier ids are already baked into packed twig keys
    sitting in the two-layer index (and the reverse node-twig index).
    Safety rests on one invariant — new labels only *append* ids — which
    these tests lock down, end to end.
    """

    def test_ids_are_append_only_under_interleaved_growth(self):
        interner = LabelInterner()
        snapshots = {}
        for wave in range(5):
            for k in range(4):
                label = f"wave{wave}-{k}"
                snapshots[label] = interner.intern(label)
            # Every id handed out in ANY earlier wave is still the same.
            for label, lid in snapshots.items():
                assert interner.intern(label) == lid
                assert interner.get(label) == lid
                assert interner.label(lid) == label

    def test_packed_keys_survive_label_growth(self):
        interner = LabelInterner()
        a, b, c = (interner.intern(x) for x in "abc")
        key = pack_twig(a, b, c)
        for k in range(100):
            interner.intern(f"late-{k}")
        # The packed key still unpacks to the same twig and the ids still
        # resolve to the same labels.
        assert unpack_twig(key) == (a, b, c)
        assert [interner.label(i) for i in (a, b, c)] == ["a", "b", "c"]
        assert pack_twig(a, b, c) == key

    def test_streamed_index_probes_survive_unseen_labels(self):
        """Interleave ingesting trees with unseen labels and probing.

        A pair filed before a burst of fresh labels must remain findable
        after it — the unit-level statement of the streaming bugfix
        invariant (new labels only append ids).
        """
        from repro.stream import StreamingJoin

        join = StreamingJoin(1)
        join.add(Tree.from_bracket("{a{b}{c{d}}}"))
        interner = join._driver.interner
        ids_before = {x: interner.get(x) for x in "abcd"}
        # A burst of arrivals made entirely of labels the interner has
        # never seen (they form their own cluster, far from the first).
        for k in range(8):
            join.add(Tree.from_bracket(
                "{n%d{n%d{n%d}}{n%d}}" % (k, k + 100, k + 200, k + 300)
            ))
        # Old ids unchanged...
        assert {x: interner.get(x) for x in "abcd"} == ids_before
        # ...and a near-duplicate of the first tree still finds it
        # through the index entries filed before the growth.
        found = join.add(Tree.from_bracket("{a{b}{c{e}}}"))
        assert [(p.i, p.j, p.distance) for p in found] == [(0, 9, 1)]

    def test_overflow_leaves_interner_consistent(self):
        interner = LabelInterner()
        a = interner.intern("a")
        # Pad the id space to the cap with pointer copies (cheap).
        interner._labels.extend(["x"] * (MAX_LABEL_ID - len(interner) + 1))
        with pytest.raises(Exception):
            interner.intern("one-too-many")
        # The failed intern must not have filed a dangling id.
        assert interner.get("one-too-many") is None
        assert interner.intern("a") == a
