"""Tests for label interning and packed twig keys (repro.core.intern)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intern import (
    DEFAULT_INTERNER,
    EPSILON,
    EPSILON_ID,
    MAX_LABEL_ID,
    LabelInterner,
    pack_twig,
    unpack_twig,
)
from repro.core.treecache import TreeCache
from repro.tree.node import Tree


class TestLabelInterner:
    def test_epsilon_is_id_zero(self):
        interner = LabelInterner()
        assert interner.intern(EPSILON) == EPSILON_ID
        assert interner.label(EPSILON_ID) == EPSILON
        assert len(interner) == 1

    def test_ids_are_dense_and_stable(self):
        interner = LabelInterner()
        a = interner.intern("a")
        b = interner.intern("b")
        assert (a, b) == (1, 2)
        assert interner.intern("a") == a  # idempotent
        assert len(interner) == 3  # epsilon + a + b

    def test_round_trip(self):
        interner = LabelInterner()
        for label in ("x", "y", "a longer label", "ümlaut", ""):
            assert interner.label(interner.intern(label)) == label

    def test_get_does_not_intern(self):
        interner = LabelInterner()
        assert interner.get("unseen") is None
        assert len(interner) == 1
        interner.intern("seen")
        assert interner.get("seen") == 1

    def test_contains(self):
        interner = LabelInterner()
        interner.intern("here")
        assert "here" in interner
        assert "gone" not in interner
        assert EPSILON in interner

    def test_default_interner_is_shared_by_caches(self):
        # Two independently built caches must agree on ids, otherwise
        # cross-tree twig comparisons would be meaningless.
        a = TreeCache(Tree.from_bracket("{q7{q8}}"))
        b = TreeCache(Tree.from_bracket("{q8{q7}}"))
        assert a.interner is b.interner is DEFAULT_INTERNER
        assert a.labels[a.size] == b.labels[1]  # both are "q7"

    def test_explicit_interner(self):
        interner = LabelInterner()
        cache = TreeCache(Tree.from_bracket("{a{b}}"), interner=interner)
        assert cache.interner is interner
        assert interner.get("a") is not None


class TestPackedTwigKeys:
    @given(
        st.integers(min_value=0, max_value=MAX_LABEL_ID),
        st.integers(min_value=0, max_value=MAX_LABEL_ID),
        st.integers(min_value=0, max_value=MAX_LABEL_ID),
    )
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, label, left, right):
        assert unpack_twig(pack_twig(label, left, right)) == (label, left, right)

    @given(
        st.tuples(
            st.integers(min_value=0, max_value=MAX_LABEL_ID),
            st.integers(min_value=0, max_value=MAX_LABEL_ID),
            st.integers(min_value=0, max_value=MAX_LABEL_ID),
        ),
        st.tuples(
            st.integers(min_value=0, max_value=MAX_LABEL_ID),
            st.integers(min_value=0, max_value=MAX_LABEL_ID),
            st.integers(min_value=0, max_value=MAX_LABEL_ID),
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_injective(self, twig_a, twig_b):
        if twig_a != twig_b:
            assert pack_twig(*twig_a) != pack_twig(*twig_b)

    def test_epsilon_components_pack_as_zero_bits(self):
        assert pack_twig(0, 0, 0) == 0
        key = pack_twig(5, 0, 0)
        assert unpack_twig(key) == (5, 0, 0)
        assert key == 5 << 42

    def test_key_matches_subgraph_twig(self):
        from repro.core.partition import extract_partition

        cache = TreeCache(Tree.from_bracket("{a{b}{c{d}{e}}{f}}"))
        for sub in extract_partition(cache, 0, 3):
            assert unpack_twig(sub.twig_key) == sub.twig_ids
            label = cache.interner.label
            assert sub.twig == tuple(label(i) for i in sub.twig_ids)

    def test_interner_overflow_guard(self):
        from repro.errors import InvalidParameterError

        interner = LabelInterner()
        interner._labels = [EPSILON] * (MAX_LABEL_ID + 1)  # simulate fullness
        with pytest.raises(InvalidParameterError, match="overflow"):
            interner.intern("one-too-many")
