"""Tests for the two-layer subgraph index (repro.core.index)."""

import pytest

from repro.core.index import InvertedSizeIndex, PostorderFilter, TwoLayerIndex
from repro.core.partition import extract_partition
from repro.core.subgraph import EPSILON
from repro.core.treecache import TreeCache
from repro.errors import InvalidParameterError
from repro.tree.node import Tree
from tests.conftest import make_random_tree


def build_subgraphs(rng, size, delta):
    tree = make_random_tree(rng, size)
    cache = TreeCache(tree)
    return cache, extract_partition(cache, owner=7, delta=delta)


class TestWindowArithmetic:
    def test_paper_window_shrinks_with_rank(self, rng):
        tau = 3
        cache, subs = build_subgraphs(rng, 30, 2 * tau + 1)
        index = TwoLayerIndex(tau, PostorderFilter.PAPER)
        for sub in subs:
            assert index.window(sub) == max(0, tau - sub.rank // 2)
        # rank 1 gets the full window, the last rank gets zero.
        assert index.window(subs[0]) == tau
        assert index.window(subs[-1]) == 0

    def test_safe_window_is_constant(self, rng):
        tau = 2
        cache, subs = build_subgraphs(rng, 20, 2 * tau + 1)
        index = TwoLayerIndex(tau, PostorderFilter.SAFE)
        assert all(index.window(sub) == tau for sub in subs)


class TestInsertProbe:
    def test_subgraph_retrievable_at_every_window_key(self, rng):
        tau = 2
        cache, subs = build_subgraphs(rng, 25, 2 * tau + 1)
        index = TwoLayerIndex(tau, PostorderFilter.SAFE)
        for sub in subs:
            index.insert(sub)
        assert index.count == len(subs)
        for sub in subs:
            label, left, right = sub.twig
            for offset in range(-tau, tau + 1):
                hits = list(
                    index.probe(sub.postorder_id + offset, label, left, right)
                )
                assert sub in hits

    def test_probe_outside_window_misses(self, rng):
        tau = 1
        cache, subs = build_subgraphs(rng, 15, 2 * tau + 1)
        index = TwoLayerIndex(tau, PostorderFilter.SAFE)
        index.insert(subs[0])
        label, left, right = subs[0].twig
        hits = list(index.probe(subs[0].postorder_id + tau + 1, label, left, right))
        assert subs[0] not in hits

    def test_probe_with_actual_child_labels_finds_epsilon_twigs(self, rng):
        # A probe node may have real children where the stored twig has
        # epsilon (dangling/empty slots): the epsilon key variants cover it.
        tau = 1
        cache, subs = build_subgraphs(rng, 15, 3)
        index = TwoLayerIndex(tau, PostorderFilter.SAFE)
        target = next(s for s in subs if EPSILON in s.twig[1:])
        index.insert(target)
        hits = list(
            index.probe(target.postorder_id, target.twig[0], "anything", "else")
        )
        if target.twig[1] == EPSILON and target.twig[2] == EPSILON:
            assert target in hits

    def test_wrong_label_never_returned(self, rng):
        tau = 1
        cache, subs = build_subgraphs(rng, 15, 3)
        index = TwoLayerIndex(tau, PostorderFilter.SAFE)
        for sub in subs:
            index.insert(sub)
        hits = list(index.probe(subs[0].postorder_id, "no-such-label", "x", "y"))
        assert hits == []

    def test_no_duplicates_in_probe_results(self, rng):
        tau = 2
        cache, subs = build_subgraphs(rng, 25, 5)
        index = TwoLayerIndex(tau, PostorderFilter.SAFE)
        for sub in subs:
            index.insert(sub)
        for sub in subs:
            label, left, right = sub.twig
            hits = list(index.probe(sub.postorder_id, label, left, right))
            assert len(hits) == len(set(map(id, hits)))

    def test_off_mode_ignores_postorder(self, rng):
        tau = 1
        cache, subs = build_subgraphs(rng, 15, 3)
        index = TwoLayerIndex(tau, PostorderFilter.OFF)
        for sub in subs:
            index.insert(sub)
        for sub in subs:
            label, left, right = sub.twig
            hits = list(index.probe(999_999, label, left, right))
            assert sub in hits


class TestEntryCountIndependentOfTau:
    def test_one_entry_per_subgraph_regardless_of_tau(self, rng):
        # PR 1 filed each subgraph under 2*tau+1 duplicated postorder keys;
        # the packed-key index stores it once and resolves the window at
        # probe time, so stored entries must not grow with tau.
        tree = make_random_tree(rng, 40)
        cache = TreeCache(tree)
        entry_counts = []
        for tau in (1, 2, 3, 5):
            delta = 2 * tau + 1
            index = InvertedSizeIndex(tau, postorder_filter="safe")
            index.insert_all(40, extract_partition(cache, owner=0, delta=delta))
            assert index.total_entries == index.total_subgraphs == delta
            per_size = index.for_size(40)
            assert per_size is not None
            assert per_size.entry_count == per_size.count == delta
            entry_counts.append(index.total_entries / delta)
        # Normalized per-subgraph storage is exactly 1 for every tau.
        assert entry_counts == [1.0] * len(entry_counts)

    def test_entry_count_matches_inserts_across_filters(self, rng):
        tau = 2
        cache, subs = build_subgraphs(rng, 25, 2 * tau + 1)
        for pfilter in (PostorderFilter.SAFE, PostorderFilter.PAPER,
                        PostorderFilter.OFF):
            index = TwoLayerIndex(tau, pfilter)
            for sub in subs:
                index.insert(sub)
            assert index.entry_count == index.count == len(subs)


class TestInvertedSizeIndex:
    def test_per_size_isolation(self, rng):
        index = InvertedSizeIndex(tau=1, postorder_filter="safe")
        cache_a, subs_a = build_subgraphs(rng, 12, 3)
        cache_b, subs_b = build_subgraphs(rng, 18, 3)
        index.insert_all(12, subs_a)
        index.insert_all(18, subs_b)
        assert index.sizes() == [12, 18]
        assert index.total_subgraphs == 6
        assert index.for_size(12).count == 3
        assert index.for_size(99) is None
        assert index.for_size(99, create=True).count == 0

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            InvertedSizeIndex(tau=-1)
        with pytest.raises(InvalidParameterError):
            InvertedSizeIndex(tau=1, postorder_filter="nope")

    def test_postorder_filter_coercion(self):
        index = InvertedSizeIndex(tau=1, postorder_filter=PostorderFilter.PAPER)
        assert index.postorder_filter is PostorderFilter.PAPER
