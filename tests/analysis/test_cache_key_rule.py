"""Cache-key completeness: the rule is live against the real sources.

The acceptance test for the whole rule: copy the real ``session.py`` /
``join.py`` / ``snapshot.py`` trio, delete the one line that threads
``backend`` into ``_prep_key``, and the linter must fail.  Plus the
bookkeeping cases: stale exclusions and contradicted exclusions are
findings in their own right.
"""

import shutil
from pathlib import Path

import repro
from repro.analysis import analyze

SRC_ROOT = Path(repro.__file__).resolve().parent


def copy_real_trio(tmp_path):
    shutil.copy(SRC_ROOT / "core" / "join.py", tmp_path / "join.py")
    shutil.copy(
        SRC_ROOT / "persist" / "snapshot.py", tmp_path / "snapshot.py"
    )
    return SRC_ROOT / "session.py"


class TestLiveness:
    def test_real_trio_is_complete(self, tmp_path):
        session = copy_real_trio(tmp_path)
        shutil.copy(session, tmp_path / "session.py")
        report = analyze([tmp_path], rule_ids=["cache-key"])
        assert report.clean, report.render()

    def test_dropping_backend_from_prep_key_fails(self, tmp_path):
        session = copy_real_trio(tmp_path)
        source = session.read_text()
        assert "config.backend," in source
        (tmp_path / "session.py").write_text(
            source.replace("config.backend,\n", "")
        )
        report = analyze([tmp_path], rule_ids=["cache-key"])
        assert not report.clean
        assert any(
            f.rule == "cache-key" and "_prep_key" in f.message
            and "'backend'" in f.message
            for f in report.findings
        ), report.render()


CONFIG = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class PartSJConfig:
    semantics: str = "safe"
    seed: int = 0
    backend: str = "auto"
    workers: int = 0
    retry: object = None
    fault_injector: object = None
"""

COMPLETE_CONSUMERS = """\
def _prep_key(tau, config):
    return (tau, config.semantics, config.seed, config.backend)


def _config_fields(config):
    return {"semantics": config.semantics, "seed": config.seed}
"""


class TestBookkeeping:
    def write(self, tmp_path, consumers):
        (tmp_path / "config.py").write_text(CONFIG)
        (tmp_path / "consumers.py").write_text(consumers)
        return analyze([tmp_path], rule_ids=["cache-key"])

    def test_minimal_complete_pair_is_clean(self, tmp_path):
        report = self.write(tmp_path, COMPLETE_CONSUMERS)
        assert report.clean, report.render()

    def test_missing_field_is_a_finding(self, tmp_path):
        report = self.write(
            tmp_path,
            COMPLETE_CONSUMERS.replace("config.seed, config.backend", "config.backend"),
        )
        assert any(
            "_prep_key" in f.message and "'seed'" in f.message
            for f in report.findings
        ), report.render()

    def test_contradicted_exclusion_is_a_finding(self, tmp_path):
        # _config_fields reads backend although the exclusion list says
        # it is deliberately omitted.
        report = self.write(
            tmp_path,
            COMPLETE_CONSUMERS.replace(
                '"seed": config.seed}', '"seed": config.seed, "b": config.backend}'
            ),
        )
        assert any(
            "exclusion list claims" in f.message and "'backend'" in f.message
            for f in report.findings
        ), report.render()

    def test_stale_exclusion_is_a_finding(self, tmp_path):
        # Remove retry/fault_injector from the dataclass: the committed
        # exclusion entries for them become stale and must be flagged.
        (tmp_path / "config.py").write_text(
            CONFIG.replace("    retry: object = None\n", "")
        )
        (tmp_path / "consumers.py").write_text(COMPLETE_CONSUMERS)
        report = analyze([tmp_path], rule_ids=["cache-key"])
        stale = [f for f in report.findings if "stale entry" in f.message]
        assert len(stale) == 2  # one per consumer's exclusion list
        assert all("'retry'" in f.message for f in stale)

    def test_missing_consumer_is_a_finding(self, tmp_path):
        (tmp_path / "config.py").write_text(CONFIG)
        report = analyze([tmp_path], rule_ids=["cache-key"])
        assert any(
            "cannot be checked" in f.message for f in report.findings
        ), report.render()

    def test_whole_config_hash_covers_cache_key(self, tmp_path):
        (tmp_path / "config.py").write_text(CONFIG)
        (tmp_path / "consumers.py").write_text(
            COMPLETE_CONSUMERS
            + "\n\ndef _cache_key(self):\n"
            "    return (\"join\", self.tau, self.config)\n"
        )
        report = analyze([tmp_path], rule_ids=["cache-key"])
        assert report.clean, report.render()

    def test_partial_cache_key_is_a_finding(self, tmp_path):
        (tmp_path / "config.py").write_text(CONFIG)
        (tmp_path / "consumers.py").write_text(
            COMPLETE_CONSUMERS
            + "\n\ndef _cache_key(self):\n"
            "    cfg = self.config_obj\n"
            "    return (\"join\", cfg.semantics)\n"
        )
        report = analyze([tmp_path], rule_ids=["cache-key"])
        assert any(
            f.rule == "cache-key" and "_cache_key" in f.message
            for f in report.findings
        ), report.render()
