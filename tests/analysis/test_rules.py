"""Per-rule coverage over the committed fixture trees.

Each bad fixture plants one violation per construct the rule knows;
the assertions pin the rule id AND the exact file:line, so a rule that
drifts (stops firing, or fires on the wrong node) fails loudly.  The
good fixtures prove the negative space: idiomatic code and documented
exemptions produce zero findings.
"""

from pathlib import Path

from repro.analysis import analyze

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def findings_for(path, rule=None):
    report = analyze([FIXTURES / path])
    found = report.findings
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


def lines(findings):
    return [f.line for f in findings]


class TestDeterminismRule:
    def test_bad_fixture_every_construct_detected(self):
        found = findings_for("core/bad_determinism.py", "determinism")
        assert lines(found) == [6, 10, 14, 18, 23, 29]
        messages = " ".join(f.message for f in found)
        assert "global RNG" in messages
        assert "without a seed" in messages
        assert "id(...)" in messages
        assert "sorted" in messages

    def test_good_fixture_is_clean(self):
        assert findings_for("core/good_determinism.py") == []

    def test_scope_is_directory_based(self):
        # The same constructs outside core/kernels/parallel/stream/ted
        # are not the determinism rule's business.
        assert findings_for("bad_counters.py", "determinism") == []


class TestWallClockRule:
    def test_wall_clock_reads_flagged_outside_obs(self):
        found = findings_for("stream/bad_clock.py", "wall-clock")
        assert lines(found) == [7, 11]

    def test_obs_directory_is_exempt(self):
        assert findings_for("obs/clock_ok.py") == []


class TestPoolBoundaryRule:
    def test_bad_fixture_every_construct_detected(self):
        found = findings_for("parallel/bad_pool.py", "pool-boundary")
        assert lines(found) == [10, 14, 18, 24, 28]
        roles = " ".join(f.message for f in found)
        assert "PoolSupervisor.run task" in roles
        assert "apply_async task" in roles
        assert "pool initializer" in roles
        assert "nested function 'helper'" in roles

    def test_parent_side_closures_are_exempt(self):
        # Factory lambda, fallback lambda, partial-of-def, def initializer.
        assert findings_for("parallel/good_pool.py") == []


class TestErrorContractRule:
    def test_bare_except_and_builtin_raises(self):
        found = findings_for("bad_errors.py", "error-contract")
        assert lines(found) == [7, 13, 19]
        assert "bare except" in found[0].message
        assert "ValueError" in found[1].message
        assert "RuntimeError" in found[2].message

    def test_unexported_subclasses_detected(self):
        report = analyze([FIXTURES / "errlib"])
        found = [f for f in report.findings if f.rule == "error-contract"]
        assert [(Path(f.file).name, f.line) for f in found] == [
            ("errors.py", 12), ("extra.py", 12),
        ]
        assert "ForgottenError" in found[0].message
        assert "StrayError" in found[1].message


class TestCounterRegistryRule:
    def test_unregistered_names_detected(self):
        found = findings_for("bad_counters.py", "counter-registry")
        assert lines(found) == [5, 6, 7, 9, 10]
        named = " ".join(f.message for f in found)
        for name in ("bogus_counter", "another_bogus", "sneaky_default",
                     "mystery", "repro_bogus_total"):
            assert name in named

    def test_registered_and_dynamic_names_pass(self):
        assert findings_for("good_counters.py") == []
