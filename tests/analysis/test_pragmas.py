"""Suppression pragma semantics: precision, bookkeeping, immunity."""

from pathlib import Path

from repro.analysis import analyze

FIXTURES = Path(__file__).resolve().parent / "fixtures"


class TestPragmaPrecision:
    def test_pragma_silences_exactly_one_rule_on_one_line(self):
        # Line 7 violates BOTH determinism (random.seed) and wall-clock
        # (time.time) — the allow[determinism] pragma must keep the
        # wall-clock finding and the line-11 determinism finding alive.
        report = analyze([FIXTURES / "core" / "pragma_precision.py"])
        assert [(f.rule, f.line) for f in report.findings] == [
            ("wall-clock", 7),
            ("determinism", 11),
        ]

    def test_used_pragma_is_not_reported_unused(self):
        report = analyze([FIXTURES / "core" / "good_determinism.py"])
        assert report.clean, report.render()

    def test_pragma_only_acts_on_its_own_line(self, tmp_path):
        scoped = tmp_path / "core"
        scoped.mkdir()
        target = scoped / "mod.py"
        target.write_text(
            "import random\n"
            "# repro: allow[determinism] wrong line\n"
            "x = random.random()\n"
        )
        report = analyze([target])
        rules = [f.rule for f in report.findings]
        # The violation survives AND the misplaced pragma reads as unused.
        assert "determinism" in rules
        assert "unused-pragma" in rules


class TestPragmaBookkeeping:
    def test_unknown_id_and_unused_pragma_are_findings(self):
        report = analyze([FIXTURES / "pragmas.py"])
        assert [(f.rule, f.line) for f in report.findings] == [
            ("pragma", 3),
            ("unused-pragma", 4),
        ]
        assert "no-such-rule" in report.findings[0].message

    def test_meta_findings_cannot_be_suppressed(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "# repro: allow[no-such-rule]  # repro: allow[pragma]\n"
        )
        report = analyze([target])
        rules = sorted(f.rule for f in report.findings)
        # The unknown-id finding stands despite the allow[pragma] attempt
        # (which, being aimed at a meta rule, is itself flagged unknown).
        assert rules == ["pragma", "pragma"]

    def test_pragma_examples_in_docstrings_are_ignored(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            '"""Docs may quote `# repro: allow[determinism]` freely."""\n'
            "x = 1\n"
        )
        report = analyze([target])
        assert report.clean, report.render()

    def test_unused_pragma_not_judged_when_rule_deselected(self, tmp_path):
        scoped = tmp_path / "core"
        scoped.mkdir()
        target = scoped / "mod.py"
        target.write_text("x = 1  # repro: allow[determinism] future use\n")
        # Full battery: unused. Battery without determinism: not judged.
        assert [f.rule for f in analyze([target]).findings] == [
            "unused-pragma"
        ]
        assert analyze([target], rule_ids=["wall-clock"]).clean


class TestParseFindings:
    def test_syntax_error_reported_as_parse_finding(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def half(:\n")
        report = analyze([target])
        assert [f.rule for f in report.findings] == ["parse"]
        assert report.findings[0].line == 1
