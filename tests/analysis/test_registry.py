"""The counter registry: internally consistent and actually consumed."""

import repro.obs.metrics as metrics
from repro.analysis.registry import (
    BENCH_EXTRA_COUNTERS,
    EXTRA_COUNTER_KEYS,
    JOIN_EXTRA_COUNTERS,
    METRIC_FAMILIES,
    STREAM_EXTRA_COUNTERS,
    STREAM_FORWARDED_COUNTERS,
)


class TestRegistryConsistency:
    def test_forwarded_counters_are_registered(self):
        assert set(STREAM_FORWARDED_COUNTERS) <= EXTRA_COUNTER_KEYS

    def test_every_entry_has_a_description(self):
        for table in (JOIN_EXTRA_COUNTERS, STREAM_EXTRA_COUNTERS,
                      BENCH_EXTRA_COUNTERS, METRIC_FAMILIES):
            for name, description in table.items():
                assert name and isinstance(name, str)
                assert description.strip(), f"{name} lacks a description"

    def test_union_matches_component_tables(self):
        assert EXTRA_COUNTER_KEYS == (
            set(JOIN_EXTRA_COUNTERS)
            | set(STREAM_EXTRA_COUNTERS)
            | set(BENCH_EXTRA_COUNTERS)
        )

    def test_family_names_follow_prometheus_shape(self):
        for name in METRIC_FAMILIES:
            assert name.startswith("repro_")
            assert name == name.lower()
            assert " " not in name


class TestMetricsConsumesRegistry:
    def test_publish_stream_stats_uses_the_shared_tuple(self):
        # obs.metrics must import the forwarding list, not re-spell it.
        assert metrics.STREAM_FORWARDED_COUNTERS is STREAM_FORWARDED_COUNTERS

    def test_forwarded_counters_reach_the_family(self):
        from repro.obs.export import render_prometheus
        from repro.obs.metrics import MetricsRegistry, publish_stream_stats

        class Stats:
            trees = 4
            results = 1
            candidates = 2
            reverse_candidates = 0
            pending_verification = 0
            index_entries = 7
            quarantined_trees = 0
            ingest_time = 0.1
            verify_time = 0.2
            extra = {"retries": 3, "verify_chunks": 2, "backend": "python"}

        reg = MetricsRegistry()
        publish_stream_stats(Stats(), reg)
        text = render_prometheus(reg)
        assert 'repro_stream_counter_total{counter="retries"} 3' in text
        assert 'repro_stream_counter_total{counter="verify_chunks"} 2' in text
        # Non-integer extras are not forwarded as counters.
        assert 'counter="backend"' not in text
