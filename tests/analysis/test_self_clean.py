"""Tier-1 gate: the shipped tree passes its own invariant linter.

Any rule violation introduced anywhere in ``src/repro`` fails this test
with the linter's rendered findings, pointing at the exact file:line.
"""

from pathlib import Path

import repro
from repro.analysis import analyze

SRC_ROOT = Path(repro.__file__).resolve().parent


class TestSelfClean:
    def test_repro_package_has_no_findings(self):
        report = analyze([SRC_ROOT])
        assert report.clean, "\n" + report.render()
        # The scan actually covered the tree (not an empty-path no-op).
        assert report.files > 50

    def test_every_rule_ran_on_the_real_tree(self):
        # Defense against a rule silently short-circuiting: the battery
        # reports findings per rule id on a tree seeded with violations,
        # so a clean src/ run means "checked", not "skipped".
        from repro.analysis.rules import all_rules

        ids = [rule.id for rule in all_rules()]
        assert ids == [
            "determinism", "wall-clock", "cache-key", "pool-boundary",
            "error-contract", "counter-registry",
        ]
