"""The ``python -m repro.analysis`` entry point: exits, JSON, filters."""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([str(SRC / "repro" / "analysis")]) == 0
        assert "clean:" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main([str(FIXTURES / "stream")]) == 1
        out = capsys.readouterr().out
        assert "[wall-clock]" in out
        assert "bad_clock.py:7" in out

    def test_unknown_rule_id_exits_two(self, capsys):
        assert main(["--rule", "no-such-rule", str(FIXTURES)]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main([str(FIXTURES / "does-not-exist")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestFilters:
    def test_rule_filter_keeps_only_named_rule(self, capsys):
        assert main(["--rule", "wall-clock", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "[wall-clock]" in out
        assert "[determinism]" not in out
        assert "[pool-boundary]" not in out

    def test_path_filter_substring(self, capsys):
        assert main(["--path", "good_", str(FIXTURES)]) == 0
        assert "clean:" in capsys.readouterr().out


class TestJson:
    def test_json_report_shape(self, capsys):
        assert main(["--json", str(FIXTURES / "stream")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["files"] == 1
        finding = payload["findings"][0]
        assert set(finding) == {"file", "line", "rule", "message"}
        assert finding["rule"] == "wall-clock"

    def test_list_rules_json(self, capsys):
        assert main(["--list-rules", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        ids = [rule["id"] for rule in payload["rules"]]
        assert "determinism" in ids and "cache-key" in ids
        assert "unused-pragma" in payload["meta"]


class TestModuleInvocation:
    def test_python_dash_m_smoke(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis",
             str(SRC / "repro" / "analysis" / "registry.py")],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean:" in proc.stdout
