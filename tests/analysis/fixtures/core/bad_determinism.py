"""Fixture: determinism violations inside a core/ directory."""
import random


def pick(items):
    return random.choice(items)


def rng():
    return random.Random()


def table(nodes):
    return {id(n): i for i, n in enumerate(nodes)}


def ordered(values):
    return list({v for v in values})


def loop():
    out = []
    for p in {1, 2, 3}:
        out.append(p)
    return out


def store(registry, node):
    registry[id(node)] = node
    return registry
