"""Fixture: a pragma silences exactly one rule on exactly one line."""
import random
import time


def reseed():
    random.seed(time.time())  # repro: allow[determinism] fixture: wall-clock must still fire


def still_reported(items):
    return random.choice(items)
