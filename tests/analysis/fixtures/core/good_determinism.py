"""Fixture: determinism-clean core/ code, including a justified pragma."""
import random


def pick(items, seed):
    return random.Random(seed).choice(items)


def table(nodes):
    return {id(n): i for i, n in enumerate(nodes)}  # repro: allow[determinism] identity lookup, never iterated


def ordered(values):
    return sorted({v for v in values})


def loop():
    return [p for p in sorted({3, 1, 2})]
