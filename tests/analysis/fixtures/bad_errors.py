"""Fixture: bare except and builtin raises."""


def careless(fn):
    try:
        return fn()
    except:
        return None


def validate(x):
    if x < 0:
        raise ValueError("negative")
    return x


def guard(state):
    if state is None:
        raise RuntimeError("not initialized")
    return state
