"""Fixture: counter names nobody registered."""


def publish(stats, reg):
    stats.extra["bogus_counter"] = 1
    stats.extra.update({"another_bogus": 2})
    stats.extra.setdefault("sneaky_default", 0)
    extra = {}
    extra["mystery"] = 3
    reg.counter("repro_bogus_total", "never registered").inc()
    return extra
