"""Fixture: wall-clock reads outside obs/ and benchmarks."""
import time
from datetime import datetime


def stamp():
    return time.time()


def today():
    return datetime.now()
