"""Fixture: every written name is in the committed registry."""


def publish(stats, reg):
    stats.extra["probe_hits"] = 1
    stats.extra.update({"workers": 2})
    reg.counter("repro_join_runs_total", "Joins published").inc()
    key = "dynamic_" + "name"
    stats.extra[key] = 3  # dynamic keys are out of this rule's reach
    return stats
