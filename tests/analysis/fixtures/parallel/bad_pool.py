"""Fixture: callables that cannot cross the fork boundary."""
from functools import partial
from multiprocessing import Pool

from repro.resilience import PoolSupervisor


def run_all(tasks):
    supervisor = PoolSupervisor(lambda: Pool(2))
    return supervisor.run(lambda t: t, tasks, None)


def submit(pool, item):
    return pool.apply_async(lambda x: x, (item,))


def make_pool():
    return Pool(2, initializer=lambda: None)


def dispatch(pool, item):
    def helper(x):
        return x
    return pool.apply_async(helper, (item,))


def dispatch_partial(pool, item):
    return pool.apply_async(partial(lambda x, y: x, 1), (item,))
