"""Fixture: fork-safe dispatch — module-level defs and exempt closures."""
from functools import partial
from multiprocessing import Pool

from repro.resilience import PoolSupervisor


def task(x):
    return x


def run_all(tasks):
    # The factory and the fallback both execute in-parent: exempt.
    supervisor = PoolSupervisor(lambda: Pool(2))
    return supervisor.run(task, tasks, lambda t: t)


def submit(pool, item):
    return pool.apply_async(partial(task, 1), (item,))


def make_pool():
    return Pool(2, initializer=task)
