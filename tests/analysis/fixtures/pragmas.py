"""Fixture: pragma bookkeeping — unknown ids and unused pragmas."""

A = 1  # repro: allow[no-such-rule]
B = 2  # repro: allow[determinism]
