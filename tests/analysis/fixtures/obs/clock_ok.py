"""Fixture: the identical wall-clock reads are legitimate under obs/."""
import time
from datetime import datetime


def stamp():
    return time.time()


def today():
    return datetime.now()
