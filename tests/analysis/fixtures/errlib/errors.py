"""Fixture: an errors module whose last subclass is never exported."""


class ReproError(Exception):
    pass


class KnownError(ReproError):
    pass


class ForgottenError(ReproError):
    pass
