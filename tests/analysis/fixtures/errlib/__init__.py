"""Fixture package root: imports every error except ForgottenError."""

from errlib.errors import KnownError, ReproError

__all__ = ["ReproError", "KnownError"]
