"""Fixture: subclasses outside the errors module, with and without __all__."""

from errlib.errors import ReproError

__all__ = ["ListedError"]


class ListedError(ReproError):
    pass


class StrayError(ReproError):
    pass
