"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest
from hypothesis import strategies as st

# The flat-array equivalence tests import the frozen PR-1 reference engine
# from benchmarks/_legacy_candidates.py; make the repo root importable no
# matter where pytest was started from.
_REPO_ROOT = str(Path(__file__).resolve().parent.parent)
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from repro.tree.edits import random_script
from repro.tree.node import Tree, TreeNode

# A compact label alphabet keeps collisions (shared labels/subtrees) likely,
# which is where filter bugs hide.
LABELS = list("abcd")


def make_random_tree(rng: random.Random, size: int, labels=LABELS) -> Tree:
    """Uniform-ish random tree of exactly ``size`` nodes."""
    root = TreeNode(rng.choice(labels))
    nodes = [root]
    for _ in range(size - 1):
        parent = rng.choice(nodes)
        child = parent.add_child(TreeNode(rng.choice(labels)))
        nodes.append(child)
    return Tree(root)


def make_cluster_forest(
    rng: random.Random,
    clusters: int,
    cluster_size: int,
    base_size: int,
    max_edits: int,
    labels=LABELS,
) -> list[Tree]:
    """Forest with near-duplicate clusters (the join's natural workload)."""
    trees: list[Tree] = []
    for _ in range(clusters):
        base = make_random_tree(rng, base_size, labels)
        for _ in range(cluster_size):
            edited, _ = random_script(base, rng.randint(0, max_edits), rng, labels)
            trees.append(edited)
    return trees


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def paper_figure2_tree() -> Tree:
    """T1 of the paper's Figure 2."""
    return Tree.from_bracket("{l1{l2{l3{l4{l5}{l6}}}}{l7}}")


@pytest.fixture
def sample_forest(rng) -> list[Tree]:
    """A small clustered forest used across join tests."""
    return make_cluster_forest(
        rng, clusters=4, cluster_size=4, base_size=9, max_edits=3
    )


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

def _tree_from_shape(shape) -> TreeNode:
    label, children = shape
    return TreeNode(label, [_tree_from_shape(child) for child in children])


@st.composite
def trees(draw, max_size: int = 12, labels=LABELS) -> Tree:
    """Random rooted ordered labeled trees of at most ``max_size`` nodes."""
    size = draw(st.integers(min_value=1, max_value=max_size))
    label_strategy = st.sampled_from(labels)
    root = TreeNode(draw(label_strategy))
    nodes = [root]
    for _ in range(size - 1):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        child = parent.add_child(TreeNode(draw(label_strategy)))
        nodes.append(child)
    return Tree(root)


@st.composite
def forests(draw, max_trees: int = 8, max_size: int = 9) -> list[Tree]:
    """Random forests with a shared base to guarantee similar pairs."""
    count = draw(st.integers(min_value=2, max_value=max_trees))
    return [draw(trees(max_size=max_size)) for _ in range(count)]
