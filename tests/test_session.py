"""Tests for the prepared-once, query-many session API (repro.session).

The load-bearing property: a :class:`TreeCollection` session — cold or
warm, partsj or baseline, serial or sharded, any filter config — returns
**bit-identical** pairs and distances to the raw engines the legacy
shims wrap.  The session fixture is module-scoped on purpose: queries
accumulate prepared state, so later parametrizations run against a warm
session and the equivalence is exercised in exactly the reuse scenarios
the API exists for.
"""

import random

import pytest

from repro.baselines.histogram_join import histogram_join
from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.set_join import set_join
from repro.baselines.str_join import str_join
from repro.core.join import PartSJConfig, partsj_join
from repro.errors import InvalidParameterError
from repro.session import JOIN_METHOD_NAMES, TreeCollection
from repro.stream.engine import StreamingJoin
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest

TAUS = (1, 2, 3)

# Filter configurations covering both provable and paper-faithful
# variants (the paper config can prune differently — the session must
# reproduce even its misses bit for bit).
CONFIGS = {
    "default": None,
    "paper": PartSJConfig.paper(),
    "window_off": PartSJConfig(postorder_filter="off"),
    "random_partition": PartSJConfig(partition_strategy="random", seed=7),
}

BASELINES = {
    "str": str_join,
    "set": set_join,
    "histogram": histogram_join,
    "nested_loop": nested_loop_join,
}


def triples(pairs):
    return [(p.i, p.j, p.distance) for p in pairs]


@pytest.fixture(scope="module")
def forest():
    rng = random.Random(0x5E55)
    return make_cluster_forest(
        rng, clusters=3, cluster_size=4, base_size=10, max_edits=3
    )


@pytest.fixture(scope="module")
def session(forest):
    """One warm session shared by the whole module (reuse is the point)."""
    return TreeCollection.from_trees(forest)


class TestJoinEquivalence:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    @pytest.mark.parametrize("tau", TAUS)
    def test_partsj_session_equals_engine(self, session, forest, config_name, tau):
        config = CONFIGS[config_name]
        reference = partsj_join(forest, tau, config)
        result = session.join(tau, config=config).run()
        assert triples(result.pairs) == triples(reference.pairs)

    @pytest.mark.parametrize("config_name", ["default", "paper"])
    @pytest.mark.parametrize("tau", (1, 2))
    def test_partsj_sharded_session_equals_engine(
        self, session, forest, config_name, tau
    ):
        config = CONFIGS[config_name]
        reference = partsj_join(forest, tau, config)
        result = session.join(tau, workers=2, config=config).run()
        assert triples(result.pairs) == triples(reference.pairs)
        assert result.stats.extra.get("workers", 1) in (1, 2)

    @pytest.mark.parametrize("method", sorted(BASELINES))
    @pytest.mark.parametrize("tau", TAUS)
    def test_baseline_session_equals_engine(self, session, forest, method, tau):
        reference = BASELINES[method](forest, tau)
        result = session.join(tau, method=method).run()
        assert triples(result.pairs) == triples(reference.pairs)
        assert result.stats.method == reference.stats.method

    @pytest.mark.parametrize("method", ["str", "nested_loop"])
    def test_baseline_session_with_workers(self, session, forest, method):
        reference = BASELINES[method](forest, 2)
        result = session.join(2, method=method, workers=2).run()
        assert triples(result.pairs) == triples(reference.pairs)

    def test_warm_counters_match_cold_engine(self, session, forest):
        """A warm session's probe/partition counters equal the raw engine's
        (the prepared partitions change where work happens, not what)."""
        reference = partsj_join(forest, 2)
        result = session.join(2).run()
        for key in (
            "probe_hits", "match_tests", "match_hits", "dedup_skips",
            "partitioned_trees", "small_trees", "subgraphs_built",
            "gamma_total",
        ):
            assert result.stats.extra[key] == reference.stats.extra[key], key
        assert result.stats.candidates == reference.stats.candidates
        assert result.stats.ted_calls <= reference.stats.ted_calls

    def test_every_registered_method_agrees_on_session(self, session):
        results = {
            name: session.join(2, method=name).run().pair_set()
            for name in JOIN_METHOD_NAMES
        }
        reference = results["nested_loop"]
        assert all(r == reference for r in results.values())


class TestSearchEquivalence:
    @pytest.mark.parametrize("tau", (1, 2))
    def test_session_search_equals_fresh_searcher(self, session, forest, tau):
        from repro.search import SimilaritySearcher

        fresh = SimilaritySearcher(list(forest), tau)
        for query in forest[:6]:
            expected = [(h.index, h.distance) for h in fresh.search(query)]
            got = [
                (h.index, h.distance)
                for h in session.search(query, tau).run()
            ]
            assert got == expected

    def test_search_after_join_reuses_preparation(self, forest):
        col = TreeCollection.from_trees(forest)
        col.join(2).run()
        assert col.is_prepared(2)
        prep = col.prepare(2)
        searcher = col.searcher(2)
        # Same prepared object, same index instance on repeated access.
        assert col.prepare(2) is prep
        assert col.searcher(2) is searcher
        hits = col.search(forest[0], 2).run()
        assert any(h.distance == 0 for h in hits)

    def test_searcher_accepts_collection_and_raw_trees(self, forest):
        from repro.search import SimilaritySearcher

        col = TreeCollection.from_trees(forest)
        a = SimilaritySearcher(col, 1)
        b = SimilaritySearcher(list(forest), 1)
        for query in forest[:4]:
            assert [(h.index, h.distance) for h in a.search(query)] == [
                (h.index, h.distance) for h in b.search(query)
            ]


class TestRSJoinEquivalence:
    @pytest.mark.parametrize("tau", (0, 1, 2))
    def test_join_with_matches_merged_engine(self, forest, tau):
        left, right = forest[:6], forest[6:]
        merged = list(left) + list(right)
        inner = partsj_join(merged, tau)
        offset = len(left)
        expected = sorted(
            (p.i, p.j - offset, p.distance)
            for p in inner.pairs
            if p.i < offset <= p.j
        )
        col = TreeCollection.from_trees(left)
        result = col.join_with(right, tau).run()
        assert triples(result.pairs) == expected
        assert result.stats.method == "PRT-RS"

    def test_repeated_rs_queries_share_merged_session(self, forest):
        left_col = TreeCollection.from_trees(forest[:6])
        right_col = TreeCollection.from_trees(forest[6:])
        first = left_col.join_with(right_col, 1).run()
        merged = left_col._merged_with(right_col)
        assert merged.is_prepared(1)
        # A second query (same and different tau) reuses the same merged
        # session object — nothing re-prepared on either side.
        again = left_col.join_with(right_col, 1).run()
        assert triples(again.pairs) == triples(first.pairs)
        other_tau = left_col.join_with(right_col, 2).run()
        assert left_col._merged_with(right_col) is merged
        assert merged.prepared_taus() == [1, 2]
        assert set(p.key() for p in first.pairs) <= set(
            p.key() for p in other_tau.pairs
        )

    def test_rs_result_does_not_corrupt_cached_inner(self, forest):
        """Deriving RS stats must not mutate the merged session's cached
        self-join result (method tag, counters)."""
        left_col = TreeCollection.from_trees(forest[:6])
        left_col.join_with(forest[6:], 1).run()
        merged = left_col._merged_with(
            left_col._merged[next(iter(left_col._merged))][0]
        )
        inner = merged.join(1).run()
        assert inner.stats.method == "PRT"
        assert "cross_pairs" not in inner.stats.extra
        second = left_col.join_with(
            left_col._merged[next(iter(left_col._merged))][0], 1
        ).run()
        assert second.stats.method == "PRT-RS"


class TestStreamEquivalence:
    @pytest.mark.parametrize("tau", (1, 2))
    def test_stream_plan_equals_batch_join(self, session, forest, tau):
        batch = partsj_join(forest, tau)
        streamed = sorted(session.stream(tau).run(), key=lambda p: p.key())
        assert triples(streamed) == triples(batch.pairs)

    def test_stream_plan_micro_batch_and_workers(self, session, forest):
        batch = partsj_join(forest, 2)
        streamed = sorted(
            session.stream(2, micro_batch=3, workers=2).run(),
            key=lambda p: p.key(),
        )
        assert triples(streamed) == triples(batch.pairs)

    def test_stream_engine_handoff(self, session, forest):
        engine = session.stream(1).engine()
        try:
            assert isinstance(engine, StreamingJoin)
            assert len(engine) == len(forest)
            # The engine stays live: keep ingesting past the collection.
            engine.add(forest[0].copy())
            engine.flush()
            assert any(p.distance == 0 for p in engine.results())
        finally:
            engine.close()


class TestSessionReuse:
    def test_identical_join_served_from_result_cache(self, forest):
        col = TreeCollection.from_trees(forest)
        first = col.join(1).run()
        assert col.join(1).run() is first  # cache hit, no recompute

    def test_multi_tau_shares_tau_independent_state(self, forest):
        col = TreeCollection.from_trees(forest)
        col.join(1).run()
        caches_after_first = len(col._caches)
        annotations_after_first = len(col.verifier_caches.annotated)
        col.join(2).run()
        # tau=2 re-partitions but reuses every tree cache built for tau=1.
        assert len(col._caches) == caches_after_first
        assert len(col.verifier_caches.annotated) >= annotations_after_first
        assert col.prepared_taus() == [1, 2]

    def test_prepare_is_idempotent_and_keyed_by_config(self, forest):
        col = TreeCollection.from_trees(forest)
        a = col.prepare(1)
        assert col.prepare(1) is a
        b = col.prepare(1, PartSJConfig(partition_strategy="random"))
        assert b is not a
        assert col.is_prepared(1)
        assert not col.is_prepared(3)

    def test_stats_snapshot(self, forest):
        col = TreeCollection.from_trees(forest)
        empty = col.stats()
        assert empty["trees"] == len(forest)
        assert empty["prepared"] == []
        col.join(1).run()
        warm = col.stats()
        assert warm["cached_results"] == 1
        assert warm["prepared"][0]["tau"] == 1
        assert "TreeCollection" in repr(col)


class TestQueryPlans:
    def test_join_explain_structure(self, forest):
        col = TreeCollection.from_trees(forest)
        plan = col.join(2)
        explain = plan.explain()
        assert explain["kind"] == "join"
        assert explain["method"] == "partsj"
        assert explain["tau"] == 2
        assert explain["workers"] == 1
        assert explain["collection"]["trees"] == len(forest)
        assert explain["filter"]["semantics"] == "safe"
        assert explain["prepared"] is False
        assert explain["cached_result"] is False
        plan.run()
        explain = plan.explain()
        assert explain["prepared"] is True
        assert explain["cached_result"] is True
        assert explain["index"]["partitioned_trees"] >= 1

    def test_join_explain_includes_shards_for_workers(self, forest):
        col = TreeCollection.from_trees(forest)
        explain = col.join(1, workers=2).explain()
        shards = explain["shards"]
        assert len(shards) >= 1
        assert {"shard", "owned_trees", "band_trees", "size_range",
                "est_cost"} <= set(shards[0])

    def test_baseline_explain_carries_options(self, forest):
        col = TreeCollection.from_trees(forest)
        explain = col.join(1, method="str", banded=True).explain()
        assert explain["method"] == "str"
        assert explain["options"] == {"banded": True}
        assert "filter" not in explain

    def test_search_and_stream_explain(self, forest):
        col = TreeCollection.from_trees(forest)
        search_plan = col.search(forest[0], 1)
        assert search_plan.explain()["kind"] == "search"
        assert search_plan.explain()["query_size"] == forest[0].size
        stream_plan = col.stream(1, micro_batch=2)
        explain = stream_plan.explain()
        assert explain["kind"] == "stream"
        assert explain["micro_batch"] == 2
        assert explain["source"]["trees"] == len(forest)
        assert explain["prepared"] is False

    def test_iter_matches_run(self, forest):
        col = TreeCollection.from_trees(forest)
        assert triples(col.join(1).iter()) == triples(col.join(1).run().pairs)

    def test_plan_repr_mentions_method_and_tau(self, forest):
        col = TreeCollection.from_trees(forest)
        text = repr(col.join(2))
        assert "JoinPlan" in text and "2" in text


class TestValidation:
    def test_tau_validated_at_plan_build(self, forest):
        col = TreeCollection.from_trees(forest)
        with pytest.raises(InvalidParameterError, match="tau"):
            col.join(-1)
        with pytest.raises(InvalidParameterError, match="tau"):
            col.join(1.5)
        with pytest.raises(InvalidParameterError, match="tau"):
            col.search(forest[0], -2)
        with pytest.raises(InvalidParameterError, match="tau"):
            col.stream(-1)

    def test_workers_validated_at_plan_build(self, forest):
        col = TreeCollection.from_trees(forest)
        with pytest.raises(InvalidParameterError, match="workers"):
            col.join(1, workers=0)
        with pytest.raises(InvalidParameterError, match="workers"):
            col.join(1, workers="two")
        with pytest.raises(InvalidParameterError, match="workers"):
            col.stream(1, workers=0)

    def test_micro_batch_validated(self, forest):
        col = TreeCollection.from_trees(forest)
        with pytest.raises(InvalidParameterError, match="micro_batch"):
            col.stream(1, micro_batch=0)

    def test_unknown_method_and_config_conflicts(self, forest):
        col = TreeCollection.from_trees(forest)
        with pytest.raises(InvalidParameterError, match="unknown join method"):
            col.join(1, method="magic")
        with pytest.raises(InvalidParameterError, match="not both"):
            col.join(1, config=PartSJConfig(), semantics="paper")
        with pytest.raises(InvalidParameterError, match="PartSJ option"):
            col.join(1, method="str", config=PartSJConfig())

    def test_non_tree_rejected_at_construction(self):
        with pytest.raises(InvalidParameterError, match="expected Tree"):
            TreeCollection.from_trees([Tree.from_bracket("{a}"), "nope"])
        col = TreeCollection.from_trees([Tree.from_bracket("{a}")])
        with pytest.raises(InvalidParameterError, match="query must be a Tree"):
            col.search("nope", 1)

    def test_empty_and_single_tree_collections(self):
        empty = TreeCollection.from_trees([])
        assert empty.join(1).run().pairs == []
        assert empty.stats()["size_min"] is None
        single = TreeCollection.from_trees([Tree.from_bracket("{a}")])
        assert single.join(1).run().pairs == []
        assert single.search(Tree.from_bracket("{a}"), 0).run()[0].distance == 0


class TestReviewRegressions:
    """Pinned behaviors from the PR-5 review pass."""

    def test_prep_key_separates_semantics(self, forest):
        """A paper-semantics preparation must never answer a safe-config
        search (prep.config leaks into query-time matching)."""
        from repro.core.subgraph import MatchSemantics

        col = TreeCollection.from_trees(forest)
        col.prepare(2, PartSJConfig(semantics="paper"))
        safe_searcher = col.searcher(2)
        assert safe_searcher.config.semantics is MatchSemantics.SAFE
        paper_searcher = col.searcher(2, PartSJConfig(semantics="paper"))
        assert paper_searcher.config.semantics is MatchSemantics.PAPER
        assert safe_searcher is not paper_searcher
        # And the safe searcher answers exactly like a fresh safe one.
        from repro.search import SimilaritySearcher

        fresh = SimilaritySearcher(list(forest), 2)
        for query in forest[:4]:
            assert [
                (h.index, h.distance) for h in safe_searcher.search(query)
            ] == [(h.index, h.distance) for h in fresh.search(query)]

    def test_custom_join_method_registry_still_dispatches(self, forest):
        import warnings

        from repro.api import JOIN_METHODS, similarity_join
        from repro.baselines.nested_loop import nested_loop_join

        calls = []

        def custom(trees, tau, **options):
            calls.append((len(trees), tau, options))
            return nested_loop_join(trees, tau)

        JOIN_METHODS["custom_test_method"] = custom
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                result = similarity_join(forest, 1, method="custom_test_method")
            assert calls == [(len(forest), 1, {})]
            assert result.pair_set() == nested_loop_join(forest, 1).pair_set()
        finally:
            del JOIN_METHODS["custom_test_method"]

    def test_join_with_plain_sequence_reuses_merged_session(self, forest):
        left_col = TreeCollection.from_trees(forest[:6])
        right_list = list(forest[6:])
        left_col.join_with(right_list, 1).run()
        merged = left_col._merged_with(right_list)
        left_col.join_with(right_list, 2).run()
        assert left_col._merged_with(right_list) is merged
        assert merged.prepared_taus() == [1, 2]

    def test_join_with_sees_mutations_of_plain_sequence(self, forest):
        """A mutated right-side list must invalidate the cached merged
        session — never silently answer for trees it has not seen."""
        base = forest[0]
        right = [base.copy()]
        col = TreeCollection.from_trees([base])
        first = col.join_with(right, 0).run()
        assert [(p.i, p.j) for p in first.pairs] == [(0, 0)]
        right.append(base.copy())
        second = col.join_with(right, 0).run()
        assert [(p.i, p.j) for p in second.pairs] == [(0, 0), (0, 1)]

    def test_rs_explain_does_not_build_merged_session(self, forest):
        col = TreeCollection.from_trees(forest[:6])
        plan = col.join_with(forest[6:], 2)
        explain = plan.explain()
        assert col._merged == {}  # nothing materialized by explain()
        assert explain["kind"] == "rs_join"
        assert explain["left_trees"] == 6
        assert explain["right_trees"] == len(forest) - 6
        assert explain["prepared"] is False
        plan.run()
        warm = plan.explain()  # now described through the merged session
        assert warm["prepared"] is True
        assert warm["collection"]["size_min"] is not None

    def test_merged_cache_is_bounded(self, forest):
        left_col = TreeCollection.from_trees(forest[:4])
        limit = TreeCollection._MERGED_CACHE_LIMIT
        for _ in range(limit + 3):
            left_col.join_with([forest[-1].copy()], 0).run()
        assert len(left_col._merged) <= limit

    def test_search_leaves_shared_caches_query_free(self, forest):
        col = TreeCollection.from_trees(forest)
        col.search(forest[0], 1).run()
        query_index = len(forest)
        shared = col.verifier_caches
        assert query_index not in shared.annotated
        assert query_index not in shared.mirrored
        assert query_index not in shared.features
        # Collection-tree work done during the search was written back.
        assert len(shared.annotated) > 0 or len(shared.features) > 0

    def test_workers_config_composition_reports_itself(self, forest):
        col = TreeCollection.from_trees(forest)
        plan = col.join(1, config=PartSJConfig(workers=2))
        explain = plan.explain()
        assert explain["workers"] == 2
        assert "shards" in explain
        reference = partsj_join(forest, 1)
        assert triples(plan.run().pairs) == triples(reference.pairs)

    def test_parallel_fallback_on_degenerate_collection(self):
        tiny = TreeCollection.from_trees([Tree.from_bracket("{a{b}{c}}")])
        assert tiny.join(1, workers=4).run().pairs == []

    def test_prepared_session_feeds_parallel_run(self, forest):
        col = TreeCollection.from_trees(forest)
        col.join(2).run()  # serial first: tau=2 fully prepared
        reference = partsj_join(forest, 2)
        parallel = col.join(2, workers=2).run()
        assert triples(parallel.pairs) == triples(reference.pairs)


class TestFromFile:
    def test_from_file_round_trip(self, tmp_path, forest):
        from repro.datasets.io import save_trees

        path = tmp_path / "forest.trees"
        save_trees(forest, path)
        col = TreeCollection.from_file(path)
        assert len(col) == len(forest)
        assert triples(col.join(1).run().pairs) == triples(
            partsj_join(forest, 1).pairs
        )


class TestCacheManagement:
    def test_merged_cache_evicts_least_recently_used(self, forest):
        col = TreeCollection.from_trees(forest[:4])
        limit = TreeCollection._MERGED_CACHE_LIMIT
        rights = [[tree.copy()] for tree in forest[:limit]]
        for right in rights:
            col.join_with(right, 0).run()
        # Touch the oldest entry: a hit must refresh its recency...
        col.join_with(rights[0], 0).run()
        assert len(col._merged) == limit
        # ...so the next insertion evicts rights[1], not rights[0].
        col.join_with([forest[-1].copy()], 0).run()
        assert id(rights[0]) in col._merged
        assert id(rights[1]) not in col._merged

    def test_drop_caches_releases_query_state(self, forest):
        col = TreeCollection.from_trees(forest)
        col.join(1).run()
        col.join_with([forest[0].copy()], 0).run()
        assert col.stats()["cached_results"] > 0
        assert col.stats()["merged_sessions"] == 1
        col.drop_caches()
        stats = col.stats()
        assert stats["cached_results"] == 0
        assert stats["merged_sessions"] == 0
        assert col.prepared_taus() == [1]  # prepared state survives
        assert triples(col.join(1).run().pairs) == triples(
            partsj_join(forest, 1).pairs
        )

    def test_drop_caches_deep_resets_to_cold(self, forest):
        col = TreeCollection.from_trees(forest)
        col.join(1).run()
        col.search(forest[0], 1).run()
        col.drop_caches(deep=True)
        stats = col.stats()
        assert col.prepared_taus() == []
        assert stats["tree_caches"] == 0
        assert stats["verifier_annotations"] == 0
        # The session is still fully usable and still bit-identical.
        assert triples(col.join(1).run().pairs) == triples(
            partsj_join(forest, 1).pairs
        )
