"""Public-API surface snapshot and shim-deprecation behavior.

Two guards:

1. ``repro.__all__`` is pinned exactly — adding or removing a public name
   is a deliberate act that must touch this snapshot.
2. The legacy one-shot shims warn (``DeprecationWarning``) exactly once
   per process each, pointing at the session API; the pytest
   configuration additionally turns repro-internal DeprecationWarnings
   into errors, so the library can never regress into calling its own
   shims.
"""

import warnings

import pytest

import repro
from repro.api import _reset_shim_warnings
from repro.errors import InvalidParameterError
from repro.tree.node import Tree

EXPECTED_EXPORTS = {
    # data model
    "Tree", "TreeNode", "tree_stats", "collection_stats",
    # distances
    "ted", "ted_within",
    # sessions
    "TreeCollection", "QueryPlan", "JoinPlan", "RSJoinPlan",
    "SearchPlan", "StreamPlan",
    # joins
    "similarity_join", "similarity_join_rs", "stream_join",
    "StreamingJoin", "StreamJoinService", "StreamStats",
    "JOIN_METHODS", "partsj_join", "PartSJConfig", "MatchSemantics",
    "PostorderFilter", "InvertedSizeIndex", "nested_loop_join",
    "str_join", "set_join", "histogram_join",
    "JoinPair", "JoinResult", "JoinStats",
    # search
    "similarity_search", "SimilaritySearcher", "SearchHit",
    # datasets
    "SyntheticParams", "TreeGenerator", "generate_forest",
    "swissprot_like", "treebank_like", "sentiment_like",
    "save_trees", "load_trees",
    # observability
    "Tracer", "Span", "MetricsRegistry", "get_registry",
    "publish_join_stats", "publish_stream_stats",
    "write_jsonl", "read_jsonl", "render_prometheus", "format_span_tree",
    # resilience
    "RetryPolicy", "FaultInjector",
    # errors
    "ReproError", "TreeFormatError", "InvalidParameterError",
    "InvalidInputTypeError", "TraceFormatError",
    "EditOperationError", "NotPartitionableError",
    "WorkerFailureError", "WorkerStateError", "TaskTimeoutError",
    "IngestError",
    # persistence errors
    "PersistenceError", "SnapshotFormatError", "SnapshotIntegrityError",
    "StaleSnapshotError", "WALCorruptError",
    # metadata
    "__version__",
}

SHIM_TREES = [Tree.from_bracket(s) for s in ("{a{b}}", "{a{b}{c}}")]

SHIMS = {
    "similarity_join": lambda: repro.similarity_join(SHIM_TREES, 1),
    "similarity_join_rs": lambda: repro.similarity_join_rs(
        SHIM_TREES, SHIM_TREES, 1
    ),
    "similarity_search": lambda: repro.similarity_search(
        SHIM_TREES[0], SHIM_TREES, 1
    ),
    "stream_join": lambda: list(repro.stream_join(iter(SHIM_TREES), 1)),
}


class TestSurfaceSnapshot:
    def test_all_is_pinned_exactly(self):
        assert set(repro.__all__) == EXPECTED_EXPORTS

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_join_methods_registry_names(self):
        assert sorted(repro.JOIN_METHODS) == [
            "histogram", "nested_loop", "partsj", "prt", "rel", "set", "str",
        ]

    def test_session_methods_exist(self):
        col = repro.TreeCollection.from_trees(SHIM_TREES)
        for method in ("join", "join_with", "search", "searcher", "stream",
                       "prepare", "is_prepared", "prepared_taus", "stats",
                       "from_trees", "from_file"):
            assert callable(getattr(col, method)), method


class TestShimDeprecationWarnings:
    @pytest.mark.parametrize("name", sorted(SHIMS))
    def test_shim_warns_exactly_once_per_process(self, name):
        _reset_shim_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            SHIMS[name]()
            SHIMS[name]()  # second call must stay silent
        shim_warnings = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
            and name in str(w.message)
        ]
        assert len(shim_warnings) == 1
        assert "TreeCollection" in str(shim_warnings[0].message)

    def test_reset_rearms_the_warning(self):
        _reset_shim_warnings()
        with warnings.catch_warnings(record=True) as first:
            warnings.simplefilter("always")
            SHIMS["similarity_join"]()
        _reset_shim_warnings()
        with warnings.catch_warnings(record=True) as second:
            warnings.simplefilter("always")
            SHIMS["similarity_join"]()
        for caught in (first, second):
            assert any(
                issubclass(w.category, DeprecationWarning) for w in caught
            )

    def test_shims_match_sessions_bit_for_bit(self):
        """The equivalence claim of the shims, on the surface itself."""
        _reset_shim_warnings()
        col = repro.TreeCollection.from_trees(SHIM_TREES)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert [
                (p.i, p.j, p.distance)
                for p in repro.similarity_join(SHIM_TREES, 1).pairs
            ] == [(p.i, p.j, p.distance) for p in col.join(1).run().pairs]
            assert [
                (h.index, h.distance)
                for h in repro.similarity_search(SHIM_TREES[0], SHIM_TREES, 1)
            ] == [
                (h.index, h.distance)
                for h in col.search(SHIM_TREES[0], 1).run()
            ]


class TestCentralizedValidation:
    """The same domain checks guard every entry point (repro.params)."""

    def test_similarity_join_rejects_negative_tau(self):
        with pytest.raises(InvalidParameterError, match="tau"):
            repro.similarity_join(SHIM_TREES, -1)

    def test_similarity_join_rejects_non_integer_tau(self):
        with pytest.raises(InvalidParameterError, match="tau"):
            repro.similarity_join(SHIM_TREES, 1.5)

    def test_similarity_join_rejects_bad_workers(self):
        with pytest.raises(InvalidParameterError, match="workers"):
            repro.similarity_join(SHIM_TREES, 1, workers=0)
        with pytest.raises(InvalidParameterError, match="workers"):
            repro.similarity_join(SHIM_TREES, 1, workers=1.5)

    def test_stream_join_rejects_bad_workers(self):
        # Historical gap: stream_join accepted any workers value until the
        # engine choked; it now shares similarity_join's check, eagerly.
        with pytest.raises(InvalidParameterError, match="workers"):
            repro.stream_join(iter(SHIM_TREES), 1, workers=0)
        with pytest.raises(InvalidParameterError, match="workers"):
            repro.stream_join(iter(SHIM_TREES), 1, workers="two")

    def test_stream_join_rejects_bad_tau_and_micro_batch_eagerly(self):
        with pytest.raises(InvalidParameterError, match="tau"):
            repro.stream_join(iter(SHIM_TREES), -1)
        with pytest.raises(InvalidParameterError, match="micro_batch"):
            repro.stream_join(iter(SHIM_TREES), 1, micro_batch=0)

    def test_rs_join_rejects_bad_workers_first_class(self):
        with pytest.raises(InvalidParameterError, match="workers"):
            repro.similarity_join_rs(SHIM_TREES, SHIM_TREES, 1, workers=0)

    def test_search_rejects_negative_tau(self):
        with pytest.raises(InvalidParameterError, match="tau"):
            repro.similarity_search(SHIM_TREES[0], SHIM_TREES, -3)

    def test_streaming_engine_shares_the_checks(self):
        with pytest.raises(InvalidParameterError, match="tau"):
            repro.StreamingJoin(-1)
        with pytest.raises(InvalidParameterError, match="workers"):
            repro.StreamingJoin(1, workers=0)
