"""Tests for the LC-RS (Knuth) transformation (repro.tree.lcrs)."""

import pytest
from hypothesis import given

from repro.errors import TreeFormatError
from repro.tree.binary import BinaryNode, BinaryTree, EdgeKind
from repro.tree.lcrs import from_lcrs, to_lcrs
from repro.tree.node import Tree
from tests.conftest import trees


class TestToLcrs:
    def test_paper_figure4(self):
        # Figure 4(a): root l1 with children l2, l6, l7; l2 -> l3 -> (l4, l5);
        # l7 -> l8 -> (l9, l10 as chain l8's children l9; l9 child l10).
        general = Tree.from_bracket("{l1{l2{l3{l4}{l5}}}{l6}{l7{l8{l9{l10}}}}}")
        binary = to_lcrs(general)
        root = binary.root
        assert root.label == "l1"
        assert root.right is None  # the root has no sibling
        assert root.left.label == "l2"  # leftmost child
        assert root.left.right.label == "l6"  # next sibling
        assert root.left.right.right.label == "l7"
        assert root.left.left.label == "l3"
        # Figure 4(b) shows l4 with right-sibling pointer to l5.
        l3 = root.left.left
        assert l3.left.label == "l4"
        assert l3.left.right.label == "l5"

    def test_single_node(self):
        binary = to_lcrs(Tree.from_bracket("{a}"))
        assert binary.root.left is None and binary.root.right is None
        assert binary.size == 1

    def test_node_count_preserved(self, rng):
        from tests.conftest import make_random_tree

        tree = make_random_tree(rng, 57)
        assert to_lcrs(tree).size == 57

    def test_labels_preserved_as_multiset(self, rng):
        from collections import Counter

        from tests.conftest import make_random_tree

        tree = make_random_tree(rng, 30)
        binary = to_lcrs(tree)
        assert Counter(n.label for n in binary.iter_postorder()) == Counter(
            tree.labels()
        )

    def test_deep_tree_no_recursion_error(self):
        chain = "{x" * 4000 + "}" * 4000
        binary = to_lcrs(Tree.from_bracket(chain))
        assert binary.size == 4000


class TestFromLcrs:
    @given(trees(max_size=20))
    def test_round_trip(self, tree):
        assert from_lcrs(to_lcrs(tree)) == tree

    def test_rejects_root_with_sibling_pointer(self):
        root = BinaryNode("a")
        root.set_right(BinaryNode("b"))
        with pytest.raises(TreeFormatError):
            from_lcrs(BinaryTree(root))


class TestEdgeKinds:
    def test_incoming_categories(self):
        binary = to_lcrs(Tree.from_bracket("{a{b{d}}{c}}"))
        root = binary.root
        assert root.incoming is EdgeKind.ROOT
        assert root.left.incoming is EdgeKind.LEFT  # b: leftmost child of a
        assert root.left.right.incoming is EdgeKind.RIGHT  # c: sibling of b
        assert root.left.left.incoming is EdgeKind.LEFT  # d: leftmost child of b

    def test_postorder_numbering_matches_figure7_convention(self):
        # Binary postorder: left subtree, right subtree, node — the root is
        # always the last node (number == size).
        binary = to_lcrs(Tree.from_bracket("{a{b}{c{d}}}"))
        assert binary.postorder_number(binary.root) == binary.size
        numbers = [binary.postorder_number(n) for n in binary.iter_postorder()]
        assert numbers == list(range(1, binary.size + 1))


class TestBinaryTree:
    def test_structural_equality(self):
        t1 = to_lcrs(Tree.from_bracket("{a{b}{c}}"))
        t2 = to_lcrs(Tree.from_bracket("{a{b}{c}}"))
        t3 = to_lcrs(Tree.from_bracket("{a{b{c}}}"))
        assert t1 == t2
        assert t1 != t3

    def test_preorder_iteration(self):
        binary = to_lcrs(Tree.from_bracket("{a{b}{c}}"))
        labels = [n.label for n in binary.iter_preorder()]
        assert labels[0] == "a"
        assert sorted(labels) == ["a", "b", "c"]

    def test_root_type_checked(self):
        with pytest.raises(TypeError):
            BinaryTree("nope")

    def test_subtree_size(self):
        binary = to_lcrs(Tree.from_bracket("{a{b{x}{y}}{c}}"))
        # b's binary subtree contains b, its children chain, and sibling c.
        assert binary.root.left.subtree_size() == binary.size - 1
