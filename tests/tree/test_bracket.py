"""Tests for bracket-notation parsing and serialization."""

import pytest
from hypothesis import given

from repro.errors import TreeFormatError
from repro.tree.bracket import escape_label, parse_bracket, to_bracket, unescape_label
from tests.conftest import trees


class TestParse:
    def test_single_node(self):
        tree = parse_bracket("{a}")
        assert tree.size == 1
        assert tree.root.label == "a"

    def test_nested(self):
        tree = parse_bracket("{a{b{c}}{d}}")
        assert tree.root.label == "a"
        assert [c.label for c in tree.root.children] == ["b", "d"]
        assert tree.root.children[0].children[0].label == "c"

    def test_empty_label_allowed(self):
        tree = parse_bracket("{{x}}")
        assert tree.root.label == ""
        assert tree.root.children[0].label == "x"

    def test_whitespace_around_input_is_stripped(self):
        assert parse_bracket("  {a}  ").root.label == "a"

    def test_labels_with_spaces(self):
        tree = parse_bracket("{hello world{child one}}")
        assert tree.root.label == "hello world"
        assert tree.root.children[0].label == "child one"

    def test_escaped_braces_in_labels(self):
        tree = parse_bracket(r"{a\{b\}}")
        assert tree.root.label == "a{b}"

    def test_escaped_backslash(self):
        tree = parse_bracket(r"{a\\b}")
        assert tree.root.label == "a\\b"

    @pytest.mark.parametrize("bad", [
        "",  # empty
        "   ",  # whitespace only
        "a",  # no brace
        "{a",  # unbalanced open
        "{a}}",  # unbalanced close
        "{a}{b}",  # forest
        "{a{b}x}",  # garbage between siblings
        "{a\\",  # dangling escape
    ])
    def test_malformed_inputs_raise(self, bad):
        with pytest.raises(TreeFormatError):
            parse_bracket(bad)


class TestSerialize:
    def test_round_trip_simple(self):
        text = "{a{b{c}}{d}}"
        assert to_bracket(parse_bracket(text)) == text

    def test_round_trip_with_escapes(self):
        tree = parse_bracket(r"{we\{ird\\}")
        assert parse_bracket(to_bracket(tree)) == tree

    @given(trees(max_size=15))
    def test_round_trip_random_trees(self, tree):
        assert parse_bracket(to_bracket(tree)) == tree

    def test_escape_unescape_inverse(self):
        for label in ["plain", "{", "}", "\\", "a{b}c\\d", ""]:
            assert unescape_label(escape_label(label)) == label
