"""Tests for structural validation (repro.tree.validate)."""

import pytest

from repro.errors import TreeFormatError
from repro.tree.binary import BinaryNode, BinaryTree
from repro.tree.lcrs import to_lcrs
from repro.tree.node import Tree, TreeNode
from repro.tree.validate import validate_binary_tree, validate_tree


class TestValidateTree:
    def test_valid_tree_passes(self):
        validate_tree(Tree.from_bracket("{a{b{c}}{d}}"))

    def test_shared_subtree_detected(self):
        shared = TreeNode("s")
        root = TreeNode("a", [shared, TreeNode("b", [shared])])
        with pytest.raises(TreeFormatError, match="DAG"):
            validate_tree(Tree(root))

    def test_direct_duplicate_child_detected(self):
        child = TreeNode("c")
        root = TreeNode("a", [child, child])
        with pytest.raises(TreeFormatError):
            validate_tree(Tree(root))


class TestValidateBinaryTree:
    def test_lcrs_output_is_valid(self):
        validate_binary_tree(to_lcrs(Tree.from_bracket("{a{b}{c{d}}}")))

    def test_stale_parent_pointer_detected(self):
        root = BinaryNode("a")
        child = BinaryNode("b")
        root.left = child  # bypasses set_left: no parent pointer
        with pytest.raises(TreeFormatError, match="stale parent"):
            validate_binary_tree(BinaryTree(root))

    def test_root_with_parent_detected(self):
        outer = BinaryNode("o")
        root = BinaryNode("a")
        outer.set_left(root)
        with pytest.raises(TreeFormatError, match="root"):
            validate_binary_tree(BinaryTree(root))

    def test_shared_binary_node_detected(self):
        root = BinaryNode("a")
        shared = BinaryNode("s")
        root.set_left(shared)
        other = BinaryNode("b")
        root.set_right(other)
        other.set_left(shared)  # reachable twice; parent now 'other'
        shared.parent = None  # make parents ambiguous on purpose
        with pytest.raises(TreeFormatError):
            validate_binary_tree(BinaryTree(root))
