"""Tests for the general-tree data model (repro.tree.node)."""

import pytest

from repro.tree.node import Tree, TreeNode


class TestTreeNode:
    def test_construction_and_children_order(self):
        node = TreeNode("a", [TreeNode("b"), TreeNode("c")])
        assert node.label == "a"
        assert [c.label for c in node.children] == ["b", "c"]

    def test_label_is_coerced_to_string(self):
        assert TreeNode(42).label == "42"

    def test_add_child_returns_child_and_appends(self):
        root = TreeNode("a")
        child = root.add_child(TreeNode("b"))
        root.add_child(TreeNode("c"))
        assert child.label == "b"
        assert [c.label for c in root.children] == ["b", "c"]

    def test_is_leaf_and_degree(self):
        root = TreeNode("a", [TreeNode("b")])
        assert not root.is_leaf
        assert root.degree == 1
        assert root.children[0].is_leaf

    def test_subtree_size(self):
        tree = Tree.from_bracket("{a{b{c}{d}}{e}}")
        assert tree.root.subtree_size() == 5
        assert tree.root.children[0].subtree_size() == 3

    def test_copy_is_deep(self):
        original = Tree.from_bracket("{a{b}}")
        duplicate = original.root.copy()
        duplicate.children[0].label = "changed"
        assert original.root.children[0].label == "b"

    def test_structural_equality(self):
        a = Tree.from_bracket("{a{b}{c}}").root
        b = Tree.from_bracket("{a{b}{c}}").root
        c = Tree.from_bracket("{a{c}{b}}").root
        assert a == b
        assert a != c  # order matters in ordered trees

    def test_equality_checks_shape_not_just_labels(self):
        flat = Tree.from_bracket("{a{b}{c}}").root
        nested = Tree.from_bracket("{a{b{c}}}").root
        assert flat != nested

    def test_nodes_hash_by_identity(self):
        a = TreeNode("x")
        b = TreeNode("x")
        assert a == b  # structurally equal
        assert len({a, b}) == 2  # but distinct dict/set keys


class TestTraversals:
    def test_preorder(self):
        tree = Tree.from_bracket("{a{b{d}{e}}{c}}")
        assert [n.label for n in tree.iter_preorder()] == ["a", "b", "d", "e", "c"]

    def test_postorder(self):
        tree = Tree.from_bracket("{a{b{d}{e}}{c}}")
        assert [n.label for n in tree.iter_postorder()] == ["d", "e", "b", "c", "a"]

    def test_single_node(self):
        tree = Tree.from_bracket("{a}")
        assert [n.label for n in tree.iter_preorder()] == ["a"]
        assert [n.label for n in tree.iter_postorder()] == ["a"]

    def test_traversals_cover_all_nodes_once(self, rng):
        from tests.conftest import make_random_tree

        tree = make_random_tree(rng, 40)
        pre = list(tree.iter_preorder())
        post = list(tree.iter_postorder())
        assert len(pre) == len(post) == 40
        assert {id(n) for n in pre} == {id(n) for n in post}

    def test_deep_tree_traversal_does_not_recurse(self):
        # 5000-deep chain would blow the default recursion limit if the
        # iterators were recursive.
        root = TreeNode("0")
        node = root
        for k in range(1, 5000):
            node = node.add_child(TreeNode(str(k)))
        tree = Tree(root)
        assert tree.size == 5000
        assert sum(1 for _ in tree.iter_postorder()) == 5000

    def test_traversal_label_lists(self):
        tree = Tree.from_bracket("{a{b}{c}}")
        assert tree.preorder_labels() == ["a", "b", "c"]
        assert tree.postorder_labels() == ["b", "c", "a"]
        assert sorted(tree.labels()) == ["a", "b", "c"]


class TestTree:
    def test_size_is_cached(self):
        tree = Tree.from_bracket("{a{b}{c}}")
        assert tree.size == 3
        assert len(tree) == 3
        assert tree._size == 3  # populated after first access

    def test_root_type_checked(self):
        with pytest.raises(TypeError):
            Tree("not a node")

    def test_copy_independent(self):
        tree = Tree.from_bracket("{a{b}}")
        clone = tree.copy()
        clone.root.label = "z"
        assert tree.root.label == "a"

    def test_equality(self):
        assert Tree.from_bracket("{a{b}}") == Tree.from_bracket("{a{b}}")
        assert Tree.from_bracket("{a{b}}") != Tree.from_bracket("{a{c}}")

    def test_trees_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(Tree.from_bracket("{a}"))
