"""Tests for XML <-> tree conversion (repro.tree.xmlio)."""

import pytest

from repro.errors import TreeFormatError
from repro.tree.xmlio import tree_from_xml, tree_from_xml_file, tree_to_xml


FIGURE1_HTML = (
    "<html><title>Test page</title><body>"
    "<p>This is a <dfn>dfn</dfn> tag example.</p>"
    "</body></html>"
)


class TestFromXml:
    def test_paper_figure1_shape(self):
        # Tags and text both become labels (paper Figure 1).
        tree = tree_from_xml(FIGURE1_HTML)
        assert tree.root.label == "html"
        assert [c.label for c in tree.root.children] == ["title", "body"]
        title = tree.root.children[0]
        assert [c.label for c in title.children] == ["Test page"]
        p = tree.root.children[1].children[0]
        assert p.label == "p"
        assert [c.label for c in p.children] == [
            "This is a", "dfn", "tag example.",
        ]
        assert p.children[1].children[0].label == "dfn"

    def test_attributes_excluded_by_default(self):
        tree = tree_from_xml('<a x="1"><b/></a>')
        assert [c.label for c in tree.root.children] == ["b"]

    def test_attributes_as_children_when_requested(self):
        tree = tree_from_xml('<a x="1" y="2"><b/></a>', include_attributes=True)
        assert [c.label for c in tree.root.children] == ["x=1", "y=2", "b"]

    def test_whitespace_only_text_ignored(self):
        tree = tree_from_xml("<a>\n  <b/>\n</a>")
        assert [c.label for c in tree.root.children] == ["b"]

    def test_malformed_xml_raises(self):
        with pytest.raises(TreeFormatError):
            tree_from_xml("<a><b></a>")

    def test_from_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(FIGURE1_HTML, encoding="utf-8")
        assert tree_from_xml_file(path).root.label == "html"


class TestToXml:
    def test_round_trip_elements(self):
        text = tree_to_xml(tree_from_xml("<a><b/><c/></a>"))
        assert tree_from_xml(text) == tree_from_xml("<a><b/><c/></a>")

    def test_text_content_escaped(self):
        from repro.tree.node import Tree, TreeNode

        tree = Tree(TreeNode("a", [TreeNode("x < y & z")]))
        rendered = tree_to_xml(tree)
        assert "&lt;" in rendered and "&amp;" in rendered
