"""Tests for tree and collection statistics (repro.tree.stats)."""

import pytest

from repro.tree.node import Tree
from repro.tree.stats import collection_stats, tree_stats


class TestTreeStats:
    def test_single_node(self):
        stats = tree_stats(Tree.from_bracket("{a}"))
        assert stats.size == 1
        assert stats.depth == 0
        assert stats.average_depth == 0.0
        assert stats.max_fanout == 0
        assert stats.leaf_count == 1
        assert stats.distinct_labels == 1
        assert stats.average_fanout == 0.0

    def test_known_tree(self):
        # depth profile: a=0, b=1, c=1, d=2 -> avg 1.0
        stats = tree_stats(Tree.from_bracket("{a{b{d}}{c}}"))
        assert stats.size == 4
        assert stats.depth == 2
        assert stats.average_depth == 1.0
        assert stats.max_fanout == 2
        assert stats.leaf_count == 2
        assert stats.distinct_labels == 4

    def test_repeated_labels_counted_once(self):
        stats = tree_stats(Tree.from_bracket("{a{a}{a}}"))
        assert stats.distinct_labels == 1

    def test_average_fanout(self):
        # 4 edges over 2 internal nodes
        stats = tree_stats(Tree.from_bracket("{a{b{x}{y}{z}}}"))
        assert stats.average_fanout == pytest.approx(4 / 2)


class TestCollectionStats:
    def test_describe_matches_paper_format(self):
        trees = [Tree.from_bracket("{a{b}}"), Tree.from_bracket("{a{b}{c{d}}}")]
        stats = collection_stats(trees)
        assert stats.count == 2
        assert stats.average_size == pytest.approx(3.0)
        assert stats.distinct_labels == 4
        assert stats.max_depth == 2
        assert stats.min_size == 2 and stats.max_size == 4
        text = stats.describe()
        assert "2 trees" in text and "average tree size 3.00" in text

    def test_average_depth_is_mean_of_tree_means(self):
        # tree1 avg depth 0.5; tree2 avg depth 0.5 -> 0.5
        trees = [Tree.from_bracket("{a{b}}"), Tree.from_bracket("{x{y}}")]
        assert collection_stats(trees).average_depth == pytest.approx(0.5)

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            collection_stats([])

    def test_accepts_iterators(self):
        stats = collection_stats(iter([Tree.from_bracket("{a}")]))
        assert stats.count == 1
