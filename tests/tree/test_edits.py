"""Tests for node edit operations (repro.tree.edits)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EditOperationError
from repro.ted.api import ted
from repro.tree.edits import (
    Delete,
    Insert,
    Rename,
    apply_edit,
    apply_script,
    random_edit,
    random_script,
)
from repro.tree.node import Tree
from tests.conftest import LABELS, trees


class TestRename:
    def test_rename_root(self):
        tree = apply_edit(Tree.from_bracket("{a{b}}"), Rename(0, "z"))
        assert tree.root.label == "z"

    def test_rename_preorder_addressing(self):
        tree = apply_edit(Tree.from_bracket("{a{b{c}}{d}}"), Rename(3, "z"))
        assert tree.to_bracket() == "{a{b{c}}{z}}"

    def test_rename_does_not_mutate_input(self):
        original = Tree.from_bracket("{a}")
        apply_edit(original, Rename(0, "z"))
        assert original.root.label == "a"

    def test_out_of_range(self):
        with pytest.raises(EditOperationError):
            apply_edit(Tree.from_bracket("{a}"), Rename(1, "z"))


class TestDelete:
    def test_children_splice_in_place(self):
        # Paper Figure 2: deleting N4 from T1 promotes N5/N6 into its slot.
        t1 = Tree.from_bracket("{l1{l2{l3{l4{l5}{l6}}}}{l7}}")
        t2 = apply_edit(t1, Delete(3))  # N4 is preorder index 3
        assert t2.to_bracket() == "{l1{l2{l3{l5}{l6}}}{l7}}"

    def test_delete_leaf(self):
        tree = apply_edit(Tree.from_bracket("{a{b}{c}}"), Delete(1))
        assert tree.to_bracket() == "{a{c}}"

    def test_delete_middle_preserves_sibling_order(self):
        tree = apply_edit(Tree.from_bracket("{a{b}{c{x}{y}}{d}}"), Delete(2))
        assert tree.to_bracket() == "{a{b}{x}{y}{d}}"

    def test_delete_root_with_single_child(self):
        tree = apply_edit(Tree.from_bracket("{a{b{c}}}"), Delete(0))
        assert tree.to_bracket() == "{b{c}}"

    def test_delete_root_with_multiple_children_rejected(self):
        with pytest.raises(EditOperationError):
            apply_edit(Tree.from_bracket("{a{b}{c}}"), Delete(0))

    def test_delete_single_node_tree_rejected(self):
        with pytest.raises(EditOperationError):
            apply_edit(Tree.from_bracket("{a}"), Delete(0))


class TestInsert:
    def test_paper_figure2_insertion(self):
        # Inserting N8 between N1 and {N6, N7} converts T2 into T3.
        t2 = Tree.from_bracket("{l1{l2{l3{l5}{l6}}}{l7}}")
        # N1 is the root; its children are l2 (pos 0) and l7 (pos 1).  The
        # paper's example adopts {N6, N7} — in T2's structure the adopted
        # run is {l7} at position 1... we reproduce the generic mechanics:
        t3 = apply_edit(t2, Insert(parent=0, position=1, count=1, label="l8"))
        assert t3.to_bracket() == "{l1{l2{l3{l5}{l6}}}{l8{l7}}}"

    def test_insert_leaf(self):
        tree = apply_edit(
            Tree.from_bracket("{a{b}}"), Insert(parent=0, position=0, count=0, label="x")
        )
        assert tree.to_bracket() == "{a{x}{b}}"

    def test_insert_adopting_all_children(self):
        tree = apply_edit(
            Tree.from_bracket("{a{b}{c}}"), Insert(parent=0, position=0, count=2, label="m")
        )
        assert tree.to_bracket() == "{a{m{b}{c}}}"

    def test_insert_delete_inverse(self):
        original = Tree.from_bracket("{a{b}{c}{d}}")
        inserted = apply_edit(original, Insert(0, 1, 2, "m"))
        # The new node "m" sits at preorder index 2 (after a, b).
        restored = apply_edit(inserted, Delete(2))
        assert restored == original

    @pytest.mark.parametrize("op", [
        Insert(parent=5, position=0, count=0, label="x"),  # bad parent
        Insert(parent=0, position=3, count=0, label="x"),  # bad position
        Insert(parent=0, position=0, count=9, label="x"),  # bad count
        Insert(parent=0, position=0, count=-1, label="x"),  # negative count
    ])
    def test_invalid_inserts_rejected(self, op):
        with pytest.raises(EditOperationError):
            apply_edit(Tree.from_bracket("{a{b}{c}}"), op)


class TestScripts:
    def test_apply_script_sequences(self):
        # The full Figure 2 storyline: T1 -> T2 (delete) -> T3 (insert)
        # -> T4 (rename).
        t1 = Tree.from_bracket("{l1{l2{l3{l4{l5}{l6}}}}{l7}}")
        t4 = apply_script(t1, [
            Delete(3),
            Insert(parent=0, position=1, count=1, label="l8"),
            Rename(3, "l9"),
        ])
        assert "l9" in t4.labels()
        assert "l4" not in t4.labels()

    @given(trees(max_size=8), st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_ted_bounded_by_script_length(self, tree, k, seed):
        rng = random.Random(seed)
        edited, ops = random_script(tree, k, rng, LABELS)
        assert len(ops) == k
        assert ted(tree, edited) <= k

    def test_random_edit_kind_weights_rename_only(self, rng):
        tree = Tree.from_bracket("{a{b}{c}}")
        for _ in range(20):
            op = random_edit(tree, rng, LABELS, kind_weights=(0, 0, 1))
            assert isinstance(op, Rename)

    def test_random_edit_always_valid(self, rng):
        tree = Tree.from_bracket("{a}")
        for _ in range(50):
            op = random_edit(tree, rng, LABELS)
            tree = apply_edit(tree, op)  # must never raise
        assert tree.size >= 1
