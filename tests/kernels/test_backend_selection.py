"""Backend resolution, validation, and the numpy-absent fallback."""

import builtins

import pytest

import repro.kernels as kernels
from repro.core.join import PartSJConfig
from repro.errors import InvalidParameterError
from repro.kernels import numpy_available, resolve_backend
from repro.params import check_backend


@pytest.fixture
def numpy_absent(monkeypatch):
    """Force the kernels package to see no numpy, restoring afterwards."""
    real_import = builtins.__import__

    def blocked(name, *args, **kwargs):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy masked by test")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", blocked)
    kernels._reset_numpy_probe()
    yield
    monkeypatch.undo()
    kernels._reset_numpy_probe()


class TestCheckBackend:
    def test_accepts_known_backends(self):
        for backend in ("auto", "python", "numpy"):
            assert check_backend(backend) == backend

    def test_rejects_unknown_backend(self):
        with pytest.raises(InvalidParameterError, match="backend"):
            check_backend("cython")

    def test_rejects_non_string(self):
        with pytest.raises(InvalidParameterError):
            check_backend(7)

    def test_config_validates_backend(self):
        with pytest.raises(InvalidParameterError):
            PartSJConfig(backend="fortran").resolved()


class TestResolveBackend:
    def test_explicit_backends_pass_through(self):
        assert resolve_backend("python") == "python"
        if numpy_available():
            assert resolve_backend("numpy") == "numpy"

    def test_auto_resolves_to_concrete(self):
        assert resolve_backend("auto") in ("python", "numpy")

    def test_resolved_config_is_concrete(self):
        cfg = PartSJConfig().resolved()
        assert cfg.backend in ("python", "numpy")

    def test_auto_prefers_numpy_when_available(self):
        if not numpy_available():
            pytest.skip("numpy not installed")
        assert resolve_backend("auto") == "numpy"


class TestNumpyAbsentFallback:
    def test_auto_falls_back_to_python(self, numpy_absent):
        assert not numpy_available()
        assert resolve_backend("auto") == "python"
        assert PartSJConfig(backend="auto").resolved().backend == "python"

    def test_explicit_numpy_raises(self, numpy_absent):
        with pytest.raises(InvalidParameterError, match="numpy"):
            resolve_backend("numpy")
        with pytest.raises(InvalidParameterError, match="numpy"):
            PartSJConfig(backend="numpy").resolved()

    def test_join_runs_pure_python(self, numpy_absent, sample_forest):
        from repro.core.join import partsj_join

        result = partsj_join(sample_forest, 2, PartSJConfig(backend="auto"))
        assert result.stats.extra["backend"] == "python"

    def test_probe_is_cached_and_resettable(self, numpy_absent):
        # Two calls under the mask hit the cached probe result; after the
        # fixture restores the import, a reset probe sees numpy again.
        assert not numpy_available()
        assert not numpy_available()


def test_backend_reported_is_resolved(sample_forest):
    from repro.core.join import partsj_join

    result = partsj_join(sample_forest, 1, PartSJConfig(backend="auto"))
    assert result.stats.extra["backend"] != "auto"
    expected = "numpy" if numpy_available() else "python"
    assert result.stats.extra["backend"] == expected
