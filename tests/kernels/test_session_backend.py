"""The backend must key every session cache (results and preparations)."""

import pytest

from repro.core.join import PartSJConfig
from repro.kernels import numpy_available
from repro.session import TreeCollection

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)


@pytest.fixture
def collection(sample_forest):
    return TreeCollection.from_trees(sample_forest)


class TestResultCacheKeying:
    def test_backends_never_share_cached_results(self, collection):
        """Regression: a warm python result must not serve a numpy query.

        Results are bit-identical, but the reported backend (and any
        future backend-dependent diagnostics) must come from the run
        that actually executed.
        """
        first = collection.join(2, backend="python").run()
        assert first.stats.extra["backend"] == "python"
        second = collection.join(2, backend="numpy").run()
        assert second.stats.extra["backend"] == "numpy"
        # Both live in the cache independently now.
        assert collection.join(2, backend="python").run() is first
        assert collection.join(2, backend="numpy").run() is second
        pairs = lambda r: [(p.i, p.j, p.distance) for p in r.pairs]  # noqa: E731
        assert pairs(first) == pairs(second)

    def test_auto_and_resolved_share_one_entry(self, collection):
        """"auto" resolves before keying: it equals its concrete backend."""
        resolved = PartSJConfig(backend="auto").resolved().backend
        first = collection.join(2, backend="auto").run()
        assert collection.join(2, backend=resolved).run() is first


class TestPrepKeying:
    def test_prep_key_includes_backend(self, collection):
        py = PartSJConfig(backend="python").resolved()
        np_ = PartSJConfig(backend="numpy").resolved()
        key_py = collection._prep_key(2, py)
        key_np = collection._prep_key(2, np_)
        assert key_py != key_np
        assert "python" in key_py and "numpy" in key_np

    def test_prepare_is_per_backend(self, collection):
        collection.prepare(2, PartSJConfig(backend="python"))
        assert collection.is_prepared(2, PartSJConfig(backend="python"))
        assert not collection.is_prepared(2, PartSJConfig(backend="numpy"))


class TestExplainReportsBackend:
    def test_join_plan_filter_backend(self, collection):
        plan = collection.join(2, backend="numpy")
        assert plan.explain()["filter"]["backend"] == "numpy"

    def test_default_is_resolved_not_auto(self, collection):
        plan = collection.join(2)
        assert plan.explain()["filter"]["backend"] in ("python", "numpy")


def test_snapshot_roundtrip_reresolves_backend(collection, tmp_path):
    """Snapshots stay backend-portable: the persisted config omits the
    backend, so a snapshot written with numpy loads on a numpy-less
    machine and re-resolves per process."""
    collection.prepare(2, PartSJConfig(backend="numpy"))
    path = tmp_path / "col.repro-idx"
    collection.save(str(path))
    loaded = TreeCollection.load(str(path))
    result = loaded.join(2).run()
    assert result.stats.extra["backend"] in ("python", "numpy")
