"""Direct property tests of the three kernels against their references."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernels import get_numpy, numpy_available
from tests.conftest import make_random_tree, trees

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)


class TestBandedTed:
    """The vector DP must equal the scalar bounded DP at every band."""

    @pytest.fixture(autouse=True)
    def force_vector_path(self, monkeypatch):
        import repro.kernels.ted as kted

        monkeypatch.setattr(kted, "NUMPY_TED_MIN_BAND", 0)

    @given(t1=trees(max_size=14), t2=trees(max_size=14),
           tau=st.integers(min_value=0, max_value=8))
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_matches_reference(self, t1, t2, tau):
        from repro.kernels.ted import BandedTed
        from repro.ted.cutoff import zhang_shasha_bounded

        assert BandedTed()(t1, t2, tau) == zhang_shasha_bounded(t1, t2, tau)

    def test_matches_reference_large_band(self):
        from repro.kernels.ted import BandedTed

        from repro.ted.cutoff import zhang_shasha_bounded
        from repro.tree.edits import random_script

        rng = random.Random(23)
        banded = BandedTed()
        for _ in range(10):
            a = make_random_tree(rng, 40)
            b, _ = random_script(a, rng.randint(0, 6), rng, list("abcd"))
            for tau in (4, 9, 20):
                assert banded(a, b, tau) == zhang_shasha_bounded(a, b, tau)

    def test_annotation_views_cached(self):
        from repro.kernels.ted import BandedTed
        from repro.ted.zhang_shasha import AnnotatedTree

        rng = random.Random(5)
        a = AnnotatedTree(make_random_tree(rng, 12))
        banded = BandedTed()
        banded(a, a, 3)
        view = banded._views[id(a)]
        banded(a, a, 3)
        assert banded._views[id(a)] is view  # reused, annotation retained

    def test_custom_rename_cost_dispatches_to_reference(self):
        from repro.kernels.ted import BandedTed
        from repro.ted.cutoff import zhang_shasha_bounded

        rng = random.Random(6)
        a = make_random_tree(rng, 10)
        b = make_random_tree(rng, 10)
        cost = lambda x, y: 0 if x == y else 2  # noqa: E731
        assert BandedTed()(a, b, 4, rename_cost=cost) == \
            zhang_shasha_bounded(a, b, 4, cost)


class TestPartitionKernel:
    """Numpy span fills must produce byte-identical subgraph bitmaps."""

    @pytest.mark.parametrize("tau", [1, 2, 3])
    def test_matches_reference_bitmaps(self, rng, tau):
        from repro.core.partition import extract_partition
        from repro.core.treecache import TreeCache

        delta = 2 * tau + 1
        for _ in range(20):
            cache = TreeCache(make_random_tree(rng, rng.randint(delta, 60)))
            py = extract_partition(cache, 0, delta, backend="python")
            np_ = extract_partition(cache, 0, delta, backend="numpy")
            assert [s.root_number for s in py] == [s.root_number for s in np_]
            for sp, sn in zip(py, np_):
                assert isinstance(sn.member_bits, bytearray)
                assert bytes(sp.member_bits) == bytes(sn.member_bits)

    def test_binary_numbering_matches(self, rng):
        from repro.core.partition import extract_partition
        from repro.core.treecache import TreeCache

        for _ in range(10):
            cache = TreeCache(make_random_tree(rng, 40))
            py = extract_partition(
                cache, 0, 5, numbering="binary", backend="python"
            )
            np_ = extract_partition(
                cache, 0, 5, numbering="binary", backend="numpy"
            )
            assert [bytes(s.member_bits) for s in py] == \
                [bytes(s.member_bits) for s in np_]


class TestProbeScratch:
    def test_grows_geometrically_and_shares_memory(self):
        from repro.kernels.probe import ProbeScratch

        scratch = ProbeScratch()
        scratch.ensure(10)
        assert len(scratch.seen) >= 10
        scratch.seen[3] = 1
        assert int(scratch.seen_np[3]) == 1  # zero-copy view
        buf = scratch.seen
        scratch.ensure(5)
        assert scratch.seen is buf  # no shrink, no realloc
        scratch.ensure(1000)
        assert len(scratch.seen) >= 1000


class TestTreeCacheArrays:
    def test_as_arrays_cached_and_consistent(self, rng):
        from repro.core.treecache import TreeCache

        np = get_numpy()
        cache = TreeCache(make_random_tree(rng, 25))
        arrays = cache.as_arrays(np)
        assert cache.as_arrays(np) is arrays
        labels, left, right, general = arrays
        assert labels.tolist() == list(cache.labels)
        assert left.tolist() == list(cache.left)
        assert right.tolist() == list(cache.right)
        assert general.tolist() == list(cache.general_post)


class TestBucketArrayCache:
    def test_bucket_arrays_invalidated_on_insert(self, rng):
        from repro.core.join import PartSJConfig, ShardDriver
        from repro.kernels.probe import _bucket_arrays

        np = get_numpy()
        trees_ = [make_random_tree(rng, 12) for _ in range(6)]
        cfg = PartSJConfig(backend="numpy").resolved()
        driver = ShardDriver(trees_, 1, cfg)
        driver.ingest(0)
        driver.ingest(1)
        bucket = None
        for by_size in driver.index.merged.values():
            for b in by_size.values():
                if b.entries:
                    bucket = b
                    break
            if bucket is not None:
                break
        assert bucket is not None
        arrays = _bucket_arrays(bucket, np)
        assert bucket.arrays is arrays
        before = len(bucket.entries)
        bucket.add(*bucket.entries[0])
        assert bucket.arrays is None  # invalidated by the insert
        rebuilt = _bucket_arrays(bucket, np)
        assert rebuilt[0].shape[0] == before + 1
