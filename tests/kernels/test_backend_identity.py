"""Bit-identity of the numpy backend across the full method matrix.

The backend contract (see ``repro.api`` "Backend selection"): python and
numpy runs return the same pairs, the same exact distances, the same
candidate counts and the same deterministic ``JoinStats`` fields under
every method, tau, worker count and filter configuration.
"""

import random

import pytest

from repro.baselines.histogram_join import histogram_join
from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.set_join import set_join
from repro.baselines.str_join import str_join
from repro.core.join import PartSJConfig, partsj_join
from repro.kernels import numpy_available
from tests.conftest import make_cluster_forest

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

# Timing fields vary run to run; everything else in extra is determined
# by the inputs — including the backend tag, which this test strips and
# checks separately.
_NONDETERMINISTIC = (
    "band_time", "prep_time", "plan_time", "candidate_wall_time",
    "verify_wall_time", "shards",
)


def deterministic_extra(stats) -> dict:
    extra = {
        k: v for k, v in stats.extra.items() if k not in _NONDETERMINISTIC
    }
    return extra


def assert_identical(result_py, result_np):
    assert result_py.stats.extra["backend"] == "python"
    assert result_np.stats.extra["backend"] == "numpy"
    pairs_py = [(p.i, p.j, p.distance) for p in result_py.pairs]
    pairs_np = [(p.i, p.j, p.distance) for p in result_np.pairs]
    assert pairs_py == pairs_np
    sp, sn = result_py.stats, result_np.stats
    assert sp.candidates == sn.candidates
    assert sp.results == sn.results
    assert sp.ted_calls == sn.ted_calls
    assert sp.pairs_considered == sn.pairs_considered
    ep, en = deterministic_extra(sp), deterministic_extra(sn)
    ep.pop("backend"), en.pop("backend")
    assert ep == en


@pytest.fixture(scope="module")
def forest():
    return make_cluster_forest(
        random.Random(0xBEEF), clusters=4, cluster_size=5, base_size=11,
        max_edits=3,
    )


@pytest.mark.parametrize("tau", [1, 2, 3])
@pytest.mark.parametrize("workers", [1, 2])
class TestPartSJMatrix:
    def test_default_filters(self, forest, tau, workers):
        py = partsj_join(
            forest, tau, PartSJConfig(backend="python", workers=workers)
        )
        np_ = partsj_join(
            forest, tau, PartSJConfig(backend="numpy", workers=workers)
        )
        assert_identical(py, np_)

    def test_paper_filters(self, forest, tau, workers):
        py = partsj_join(forest, tau, PartSJConfig(
            backend="python", workers=workers, semantics="paper",
            postorder_filter="paper",
        ))
        np_ = partsj_join(forest, tau, PartSJConfig(
            backend="numpy", workers=workers, semantics="paper",
            postorder_filter="paper",
        ))
        assert_identical(py, np_)


@pytest.mark.parametrize("tau", [1, 2, 3])
def test_partsj_filter_variants(forest, tau):
    for options in (
        {"postorder_filter": "off"},
        {"postorder_numbering": "binary"},
        {"partition_strategy": "random", "seed": 13},
    ):
        py = partsj_join(
            forest, tau, PartSJConfig(backend="python", **options)
        )
        np_ = partsj_join(
            forest, tau, PartSJConfig(backend="numpy", **options)
        )
        assert_identical(py, np_)


@pytest.mark.parametrize("join", [
    str_join, set_join, histogram_join, nested_loop_join,
], ids=["str", "set", "histogram", "nested_loop"])
@pytest.mark.parametrize("tau", [1, 2, 3])
@pytest.mark.parametrize("workers", [1, 2])
def test_baseline_matrix(forest, join, tau, workers):
    py = join(forest, tau, workers=workers, backend="python")
    np_ = join(forest, tau, workers=workers, backend="numpy")
    assert_identical(py, np_)


@pytest.mark.parametrize("tau", [1, 2])
def test_streaming_identity(forest, tau):
    from repro.stream import StreamingJoin

    results = {}
    for backend in ("python", "numpy"):
        engine = StreamingJoin(tau, PartSJConfig(backend=backend))
        pairs = []
        for tree in forest:
            pairs.extend(engine.add(tree))
        pairs.extend(engine.flush())
        stats = engine.stats()
        assert stats.extra["backend"] == backend
        results[backend] = (
            [(p.i, p.j, p.distance) for p in pairs],
            stats.candidates,
            stats.extra["ted_calls"],
        )
        engine.close()
    assert results["python"] == results["numpy"]


@pytest.mark.parametrize("tau", [1, 2])
def test_search_identity(forest, tau):
    from repro.search import SimilaritySearcher

    query = forest[0]
    hits = {}
    for backend in ("python", "numpy"):
        searcher = SimilaritySearcher(
            forest, tau, PartSJConfig(backend=backend)
        )
        hits[backend] = [
            (h.index, h.distance) for h in searcher.search(query)
        ]
    assert hits["python"] == hits["numpy"]


def test_vector_ted_engaged_identity(forest, monkeypatch):
    """Force the vector TED path (crossover to 0) through a full join."""
    import repro.kernels.ted as kted

    monkeypatch.setattr(kted, "NUMPY_TED_MIN_BAND", 0)
    for tau in (1, 2, 3):
        py = partsj_join(forest, tau, PartSJConfig(backend="python"))
        np_ = partsj_join(forest, tau, PartSJConfig(backend="numpy"))
        assert_identical(py, np_)


def test_vector_probe_engaged_identity(forest, monkeypatch):
    """Force the vector probe path (window crossover to 0) end to end."""
    import repro.kernels.probe as kprobe

    monkeypatch.setattr(kprobe, "SMALL_WINDOW", 0)
    for tau in (1, 2, 3):
        py = partsj_join(forest, tau, PartSJConfig(backend="python"))
        np_ = partsj_join(forest, tau, PartSJConfig(backend="numpy"))
        assert_identical(py, np_)
