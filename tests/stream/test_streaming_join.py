"""Flush-point equivalence: the streaming engine vs the batch pipeline.

The acceptance bar of the subsystem: over **any arrival order**, the
streamed results at every flush point are bit-identical — same pairs,
same exact distances, same canonical ordering — to a batch
``similarity_join`` over exactly the ingested prefix.  All five join
methods agree on the batch side, so streaming is checked against each of
them; the background verification pool (``workers=2``) must change
nothing but latency.
"""

import random

import pytest

from repro.api import similarity_join, stream_join
from repro.core.join import PartSJConfig
from repro.errors import InvalidParameterError
from repro.stream import StreamingJoin
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest, make_random_tree

TAUS = (1, 2, 3)
METHODS = ("partsj", "str", "set", "histogram", "nested_loop")


def triples(pairs):
    return [(p.i, p.j, p.distance) for p in pairs]


def make_stream_workload(seed, with_tiny=True):
    """Clustered forest plus (optionally) small-pool trees, shuffled."""
    rng = random.Random(seed)
    trees = make_cluster_forest(
        rng, clusters=3, cluster_size=4, base_size=10, max_edits=3
    )
    if with_tiny:
        trees += [make_random_tree(rng, rng.randint(1, 4)) for _ in range(5)]
    rng.shuffle(trees)
    return trees


class TestPrefixEquivalence:
    @pytest.mark.parametrize("seed", (11, 22, 33))
    @pytest.mark.parametrize("tau", TAUS)
    def test_every_prefix_matches_batch(self, seed, tau):
        trees = make_stream_workload(seed)
        join = StreamingJoin(tau)
        for k, tree in enumerate(trees):
            join.add(tree)
            batch = similarity_join(trees[: k + 1], tau)
            assert triples(join.results()) == triples(batch.pairs), (
                f"prefix {k + 1} diverged (tau={tau}, seed={seed})"
            )

    @pytest.mark.parametrize("tau", TAUS)
    def test_candidate_counts_match_batch(self, tau):
        trees = make_stream_workload(44)
        join = StreamingJoin(tau)
        join.add_many(trees)
        batch = similarity_join(trees, tau)
        # The reverse index reproduces the batch filter exactly, so even
        # the *candidate* counts agree — streaming is not a weaker filter.
        assert join.stats().candidates == batch.stats.candidates

    @pytest.mark.parametrize("method", METHODS)
    def test_matches_every_batch_method(self, method):
        trees = make_stream_workload(55)
        join = StreamingJoin(2)
        join.add_many(trees)
        batch = similarity_join(trees, 2, method=method)
        assert triples(join.results()) == triples(batch.pairs)

    @pytest.mark.parametrize(
        "config",
        [
            PartSJConfig(),
            PartSJConfig.paper(),
            PartSJConfig(postorder_filter="off"),
            PartSJConfig(postorder_numbering="binary"),
            PartSJConfig(partition_strategy="random", postorder_filter="off"),
        ],
        ids=["safe", "paper", "no-postorder", "binary-numbering", "random-cuts"],
    )
    def test_filter_variants_stream_like_batch(self, config):
        trees = make_stream_workload(66)
        join = StreamingJoin(2, config=config)
        join.add_many(trees)
        batch = similarity_join(trees, 2, config=config)
        assert triples(join.results()) == triples(batch.pairs)

    def test_ascending_and_descending_arrival(self):
        trees = sorted(make_stream_workload(77), key=lambda t: t.size)
        for ordering in (trees, trees[::-1]):
            join = StreamingJoin(2)
            join.add_many(ordering)
            batch = similarity_join(ordering, 2)
            assert triples(join.results()) == triples(batch.pairs)

    def test_tau_zero_exact_duplicates(self):
        rng = random.Random(9)
        base = make_random_tree(rng, 8)
        dup = Tree.from_bracket(base.to_bracket())
        trees = [make_random_tree(rng, 8), base, make_random_tree(rng, 6), dup]
        join = StreamingJoin(0)
        join.add_many(trees)
        assert triples(join.results()) == triples(similarity_join(trees, 0).pairs)
        assert join.results()[0].key() == (1, 3)


class TestBackgroundPool:
    @pytest.mark.parametrize("tau", (1, 2))
    def test_workers_change_nothing_but_latency(self, tau):
        trees = make_stream_workload(88)
        with StreamingJoin(tau, workers=2) as join:
            join.add_many(trees)
            join.flush()
            assert join.stats().pending_verification == 0
            streamed = triples(join.results())
        assert streamed == triples(similarity_join(trees, tau).pairs)

    def test_every_prefix_matches_batch_with_pool(self):
        # The workers=2 leg of the prefix property: flushing after every
        # arrival makes each prefix a flush point.  Small workload — each
        # flush blocks on the pool.
        rng = random.Random(10)
        trees = make_cluster_forest(
            rng, clusters=2, cluster_size=3, base_size=9, max_edits=2
        )
        trees += [make_random_tree(rng, rng.randint(1, 4)) for _ in range(3)]
        rng.shuffle(trees)
        with StreamingJoin(2, workers=2) as join:
            for k, tree in enumerate(trees):
                join.add(tree)
                join.flush()
                batch = similarity_join(trees[: k + 1], 2)
                assert triples(join.results()) == triples(batch.pairs)

    def test_mid_stream_flush_points(self):
        trees = make_stream_workload(99)
        cut = len(trees) // 2
        with StreamingJoin(2, workers=2) as join:
            join.add_many(trees[:cut])
            join.flush()
            batch = similarity_join(trees[:cut], 2)
            assert triples(join.results()) == triples(batch.pairs)
            join.add_many(trees[cut:])
            join.flush()
            batch = similarity_join(trees, 2)
            assert triples(join.results()) == triples(batch.pairs)


class TestStreamJoinApi:
    def test_generator_yields_batch_results(self):
        trees = make_stream_workload(12)
        streamed = sorted(
            (p.i, p.j, p.distance) for p in stream_join(iter(trees), 2)
        )
        assert streamed == sorted(triples(similarity_join(trees, 2).pairs))

    @pytest.mark.parametrize("micro_batch", (1, 4, 1000))
    def test_micro_batches_do_not_change_results(self, micro_batch):
        trees = make_stream_workload(13)
        streamed = sorted(
            (p.i, p.j, p.distance)
            for p in stream_join(iter(trees), 2, micro_batch=micro_batch)
        )
        assert streamed == sorted(triples(similarity_join(trees, 2).pairs))

    def test_pairs_reference_arrival_positions(self):
        a = Tree.from_bracket("{a{b}{c{d}}}")
        b = Tree.from_bracket("{a{b}{c{e}}}")
        filler = Tree.from_bracket("{x{y{z{w{v}}}}{u}}")
        pairs = list(stream_join(iter([filler, a, b]), 1))
        assert [(p.i, p.j, p.distance) for p in pairs] == [(1, 2, 1)]

    def test_empty_and_singleton_streams(self):
        assert list(stream_join(iter([]), 2)) == []
        assert list(stream_join(iter([Tree.from_bracket("{a}")]), 2)) == []

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            StreamingJoin(-1)
        with pytest.raises(InvalidParameterError):
            StreamingJoin(1, workers=0)
        with pytest.raises(InvalidParameterError):
            StreamingJoin(1).add("not a tree")
        # stream_join validates eagerly: the error raises at call time,
        # not at the first next() of the returned generator.
        with pytest.raises(InvalidParameterError):
            stream_join(iter([]), 1, micro_batch=0)
        with pytest.raises(InvalidParameterError):
            stream_join(iter([]), -1)

    def test_closed_engine_rejects_adds(self):
        join = StreamingJoin(1)
        join.close()
        with pytest.raises(InvalidParameterError):
            join.add(Tree.from_bracket("{a}"))


class TestStreamStats:
    def test_counters_and_rate(self):
        trees = make_stream_workload(14)
        join = StreamingJoin(2)
        join.add_many(trees)
        stats = join.stats()
        assert stats.trees == len(trees)
        assert stats.results == len(join.results())
        assert stats.pending_verification == 0
        assert stats.ingest_time > 0
        assert stats.ingest_rate > 0
        assert stats.index_entries == stats.index_subgraphs > 0
        assert stats.reverse_nodes > 0
        payload = stats.as_dict()
        assert payload["trees"] == len(trees)
        assert "ingest_rate" in payload and "extra" in payload

    def test_collection_version_tracks_inserts(self):
        join = StreamingJoin(1)
        assert join.collection.version == 0
        join.add(Tree.from_bracket("{a{b}}"))
        join.add(Tree.from_bracket("{a{c}}"))
        assert join.collection.version == 2


class TestShardReplanHook:
    def test_plan_refreshes_as_histogram_grows(self):
        rng = random.Random(15)
        join = StreamingJoin(1)
        for _ in range(8):
            join.add(make_random_tree(rng, rng.randint(5, 12)))
        first = join.shard_plan(2)
        again = join.shard_plan(2)
        assert again is first  # unchanged collection -> cached plan
        for _ in range(8):
            join.add(make_random_tree(rng, rng.randint(20, 30)))
        replanned = join.shard_plan(2)
        assert replanned is not first
        owned = [i for plan in replanned for i in plan.owned]
        assert sorted(owned) == list(range(len(join.trees)))
