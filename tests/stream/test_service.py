"""The asyncio front end: concurrent ingest + search over one warm index."""

import asyncio
import random

import pytest

from repro.api import similarity_join
from repro.stream import StreamJoinService
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest


def triples(pairs):
    return [(p.i, p.j, p.distance) for p in pairs]


@pytest.fixture
def workload():
    rng = random.Random(51)
    trees = make_cluster_forest(
        rng, clusters=3, cluster_size=3, base_size=9, max_edits=2
    )
    rng.shuffle(trees)
    return trees


class TestStreamJoinService:
    def test_concurrent_ingest_search_subscribe(self, workload):
        tau = 2
        searches = []
        received = []

        async def producer(service):
            for tree in workload:
                await service.ingest(tree)

        async def search_client(service):
            # Interleaves with the producer on the event loop; each query
            # sees some prefix of the stream and must answer over it.
            for _ in range(5):
                hits = await service.search(workload[0])
                stats = await service.stats()
                searches.append((len(hits), stats.trees))
                await asyncio.sleep(0)

        async def subscriber(service):
            async for pair in service.subscribe():
                received.append(pair)

        async def scenario():
            async with StreamJoinService(tau) as service:
                sub = asyncio.create_task(subscriber(service))
                await asyncio.gather(
                    producer(service), search_client(service)
                )
                results = await service.results()
                stats = await service.stats()
                return sub, results, stats

        async def run():
            sub, results, stats = await scenario()
            await sub  # close() ended the subscription
            return results, stats

        results, stats = asyncio.run(run())
        batch = similarity_join(workload, tau)
        assert triples(results) == triples(batch.pairs)
        assert stats.trees == len(workload)
        # Every verified pair was published to the subscriber.
        assert sorted(triples(received)) == sorted(triples(batch.pairs))
        # Searches observed monotonically growing prefixes.
        prefixes = [trees for _, trees in searches]
        assert prefixes == sorted(prefixes)

    def test_background_pool_flush(self, workload):
        async def run():
            async with StreamJoinService(2, workers=2) as service:
                await service.ingest_many(workload)
                await service.flush()
                stats = await service.stats()
                return await service.results(), stats

        results, stats = asyncio.run(run())
        assert triples(results) == triples(similarity_join(workload, 2).pairs)
        assert stats.pending_verification == 0

    def test_close_is_idempotent(self):
        async def run():
            service = StreamJoinService(1)
            await service.ingest(Tree.from_bracket("{a{b}}"))
            await service.close()
            await service.close()

        asyncio.run(run())

    def test_subscribe_after_close_ends_immediately(self):
        async def run():
            service = StreamJoinService(1)
            await service.close()
            received = [pair async for pair in service.subscribe()]
            return received

        # Must terminate (not hang on an empty queue) and yield nothing.
        assert asyncio.run(asyncio.wait_for(run(), timeout=5)) == []
