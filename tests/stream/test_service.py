"""The asyncio front end: concurrent ingest + search over one warm index."""

import asyncio
import random

import pytest

from repro.api import similarity_join
from repro.errors import IngestError, InvalidParameterError, ReproError
from repro.stream import StreamJoinService
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest


def triples(pairs):
    return [(p.i, p.j, p.distance) for p in pairs]


@pytest.fixture
def workload():
    rng = random.Random(51)
    trees = make_cluster_forest(
        rng, clusters=3, cluster_size=3, base_size=9, max_edits=2
    )
    rng.shuffle(trees)
    return trees


class TestStreamJoinService:
    def test_concurrent_ingest_search_subscribe(self, workload):
        tau = 2
        searches = []
        received = []

        async def producer(service):
            for tree in workload:
                await service.ingest(tree)

        async def search_client(service):
            # Interleaves with the producer on the event loop; each query
            # sees some prefix of the stream and must answer over it.
            for _ in range(5):
                hits = await service.search(workload[0])
                stats = await service.stats()
                searches.append((len(hits), stats.trees))
                await asyncio.sleep(0)

        async def subscriber(service):
            async for pair in service.subscribe():
                received.append(pair)

        async def scenario():
            async with StreamJoinService(tau) as service:
                sub = asyncio.create_task(subscriber(service))
                await asyncio.gather(
                    producer(service), search_client(service)
                )
                results = await service.results()
                stats = await service.stats()
                return sub, results, stats

        async def run():
            sub, results, stats = await scenario()
            await sub  # close() ended the subscription
            return results, stats

        results, stats = asyncio.run(run())
        batch = similarity_join(workload, tau)
        assert triples(results) == triples(batch.pairs)
        assert stats.trees == len(workload)
        # Every verified pair was published to the subscriber.
        assert sorted(triples(received)) == sorted(triples(batch.pairs))
        # Searches observed monotonically growing prefixes.
        prefixes = [trees for _, trees in searches]
        assert prefixes == sorted(prefixes)

    def test_background_pool_flush(self, workload):
        async def run():
            async with StreamJoinService(2, workers=2) as service:
                await service.ingest_many(workload)
                await service.flush()
                stats = await service.stats()
                return await service.results(), stats

        results, stats = asyncio.run(run())
        assert triples(results) == triples(similarity_join(workload, 2).pairs)
        assert stats.pending_verification == 0

    def test_close_is_idempotent(self):
        async def run():
            service = StreamJoinService(1)
            await service.ingest(Tree.from_bracket("{a{b}}"))
            await service.close()
            await service.close()

        asyncio.run(run())

    def test_subscribe_after_close_ends_immediately(self):
        async def run():
            service = StreamJoinService(1)
            await service.close()
            received = [pair async for pair in service.subscribe()]
            return received

        # Must terminate (not hang on an empty queue) and yield nothing.
        assert asyncio.run(asyncio.wait_for(run(), timeout=5)) == []


class TestServiceFailureSemantics:
    def test_operations_after_close_raise_clearly(self):
        async def run():
            service = StreamJoinService(1)
            await service.ingest(Tree.from_bracket("{a{b}}"))
            await service.close()
            for call in (
                service.ingest(Tree.from_bracket("{a}")),
                service.ingest_many([Tree.from_bracket("{a}")]),
                service.search(Tree.from_bracket("{a}")),
                service.flush(),
            ):
                with pytest.raises(ReproError, match="closed"):
                    await call
            # Read-only accessors survive close.
            results = await service.results()
            stats = await service.stats()
            return results, stats

        results, stats = asyncio.run(run())
        assert stats.trees == 1
        assert results == []

    def test_concurrent_close_with_subscribers(self, workload):
        """Many coroutines racing close() while subscribers are live:
        every close completes, every subscription ends, nothing hangs."""

        async def run():
            service = StreamJoinService(2)
            subs = [service.subscribe() for _ in range(3)]
            consumers = [
                asyncio.create_task(self._consume(sub)) for sub in subs
            ]
            await service.ingest_many(workload[:5])
            await asyncio.gather(*[service.close() for _ in range(4)])
            return await asyncio.gather(*consumers)

        received = asyncio.run(asyncio.wait_for(run(), timeout=10))
        # All subscribers saw the same published pairs.
        assert len({tuple(triples(r)) for r in received}) == 1

    @staticmethod
    async def _consume(subscription):
        return [pair async for pair in subscription]

    def test_ingest_accepts_bracket_strings(self):
        async def run():
            async with StreamJoinService(1) as service:
                await service.ingest("{a{b}}")
                await service.ingest_many(["{a{b{c}}}", "{a}"])
                return await service.stats()

        assert asyncio.run(run()).trees == 3

    def test_malformed_ingest_fail_raises_with_context(self):
        async def run():
            async with StreamJoinService(1) as service:
                with pytest.raises(IngestError):
                    await service.ingest("{{unbalanced")
                with pytest.raises(IngestError, match="Tree or bracket"):
                    await service.ingest(42)
                return await service.stats()

        stats = asyncio.run(run())
        assert stats.trees == 0
        assert stats.quarantined_trees == 0

    def test_malformed_ingest_skip_quarantines(self):
        async def run():
            async with StreamJoinService(1, on_error="skip") as service:
                assert await service.ingest("{{unbalanced") == []
                await service.ingest_many(
                    ["{a{b}}", "not a tree", "{a{b{c}}}", object()]
                )
                return await service.stats()

        stats = asyncio.run(run())
        assert stats.trees == 2
        assert stats.quarantined_trees == 3
        assert len(stats.extra["quarantine_log"]) == 3

    def test_on_error_validated(self):
        with pytest.raises(InvalidParameterError):
            StreamJoinService(1, on_error="ignore")


class TestBoundedSubscriptions:
    def test_drop_oldest_bounds_memory_and_counts_drops(self, workload):
        """A subscriber that never consumes: with drop_oldest its queue
        stays at maxsize and the drop counter accounts for the rest."""

        async def run():
            async with StreamJoinService(2) as service:
                sub = service.subscribe(maxsize=2, overflow="drop_oldest")
                await service.ingest_many(workload)
                published = len(await service.results())
                return sub, published

        sub, published = asyncio.run(asyncio.wait_for(run(), timeout=10))
        assert published > 2
        assert sub._queue.qsize() <= 3  # maxsize + end sentinel
        # Everything beyond the buffer was dropped and counted.
        assert sub.dropped >= published - 2

    def test_block_applies_backpressure_without_losing_pairs(self, workload):
        """A slow consumer under the block policy delays the publisher
        but receives every pair exactly once."""

        async def run():
            async with StreamJoinService(2) as service:
                sub = service.subscribe(maxsize=1, overflow="block")
                received = []

                async def slow_consumer():
                    async for pair in sub:
                        received.append(pair)
                        await asyncio.sleep(0)

                consumer = asyncio.create_task(slow_consumer())
                await service.ingest_many(workload)
                expected = await service.results()
                await service.close()
                await consumer
                return sub, received, expected

        sub, received, expected = asyncio.run(
            asyncio.wait_for(run(), timeout=10)
        )
        # Published in verification order; same pairs, nothing lost.
        assert sorted(triples(received)) == sorted(triples(expected))
        assert sub.dropped == 0

    def test_close_ends_stalled_bounded_subscriber(self, workload):
        """close() must not deadlock behind a full bounded queue whose
        consumer stopped: the sentinel is forced in."""

        async def run():
            service = StreamJoinService(2)
            sub = service.subscribe(maxsize=1, overflow="drop_oldest")
            await service.ingest_many(workload[:6])
            await service.close()
            return [pair async for pair in sub]

        # Terminates; the stalled subscriber sees at most its buffer.
        received = asyncio.run(asyncio.wait_for(run(), timeout=10))
        assert len(received) <= 1

    def test_subscribe_parameters_validated(self):
        service = StreamJoinService(1)
        with pytest.raises(InvalidParameterError):
            service.subscribe(maxsize=-1)
        with pytest.raises(InvalidParameterError):
            service.subscribe(maxsize=2, overflow="drop_newest")
