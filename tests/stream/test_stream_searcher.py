"""The warm-index searcher: live view, no rebuild, batch-search answers."""

import random

import pytest

from repro.core.join import PartSJConfig
from repro.search import SimilaritySearcher, similarity_search
from repro.stream import StreamingJoin
from repro.tree.edits import random_script
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest, make_random_tree


def hit_list(hits):
    return [(h.index, h.distance) for h in hits]


@pytest.fixture
def workload():
    rng = random.Random(21)
    trees = make_cluster_forest(
        rng, clusters=3, cluster_size=4, base_size=10, max_edits=3
    )
    trees += [make_random_tree(rng, rng.randint(1, 4)) for _ in range(4)]
    rng.shuffle(trees)
    return trees


class TestStreamSearcher:
    @pytest.mark.parametrize("tau", (1, 2))
    def test_mid_ingest_answers_equal_batch_search(self, workload, tau):
        rng = random.Random(31)
        join = StreamingJoin(tau)
        searcher = join.searcher()
        for k, tree in enumerate(workload):
            join.add(tree)
            if k % 3 != 0:
                continue
            base = workload[rng.randrange(len(workload))]
            query, _ = random_script(base, rng.randint(0, tau), rng, "abcd")
            assert hit_list(searcher.search(query)) == hit_list(
                similarity_search(query, workload[: k + 1], tau)
            )

    def test_small_and_oversized_queries(self, workload):
        join = StreamingJoin(2)
        join.add_many(workload)
        searcher = join.searcher()
        for bracket in ("{a}", "{a{b}}", "{a{b}{c}}"):
            query = Tree.from_bracket(bracket)
            assert hit_list(searcher.search(query)) == hit_list(
                similarity_search(query, workload, 2)
            )
        big = make_random_tree(random.Random(41), 60)
        assert searcher.search(big) == similarity_search(big, workload, 2)

    def test_no_rebuild_between_queries(self, workload):
        join = StreamingJoin(2)
        join.add_many(workload)
        searcher = join.searcher()
        # The searcher *is* a view: same index object, same interner, and
        # querying does not grow the index.
        assert searcher._index is join._driver.index
        assert searcher._interner is join._driver.interner
        entries_before = join._driver.index.total_entries
        searcher.search(workload[0])
        searcher.search(Tree.from_bracket("{a{b}}"))
        assert join._driver.index.total_entries == entries_before

    def test_searcher_sees_later_ingests(self, workload):
        join = StreamingJoin(1)
        searcher = join.searcher()
        query = workload[0]
        assert searcher.search(query) == []
        join.add(Tree.from_bracket(query.to_bracket()))  # exact duplicate
        hits = searcher.search(query)
        assert hit_list(hits) == [(0, 0)]

    def test_reverse_filter_prunes_larger_side(self, workload):
        # With the safe config, the streaming searcher must *filter* the
        # larger-than-query band, not verify it wholesale: a query with no
        # labels in common with the collection yields no candidates at all.
        join = StreamingJoin(2)
        join.add_many([t for t in workload if t.size > 8])
        searcher = join.searcher()
        alien = Tree.from_bracket("{q{q{q{q{q{q{q}}}}}}}")
        assert searcher.search(alien) == []

    def test_respects_paper_config(self, workload):
        config = PartSJConfig.paper()
        join = StreamingJoin(2, config=config)
        join.add_many(workload)
        stream_hits = join.searcher().search(workload[0])
        batch_hits = SimilaritySearcher(workload, 2, config=config).search(
            workload[0]
        )
        assert hit_list(stream_hits) == hit_list(batch_hits)
