"""CLI streaming mode: ``join --stream`` and ``stats --stream``."""

import io
import json

import pytest

from repro.cli import main
from repro.datasets.io import load_trees

BRACKET_LINES = "\n".join([
    "{a{b}{c{d}}}",
    "",                 # blank lines are skipped
    "# a comment",      # so are comment lines
    "{a{b}{c{e}}}",
    "{x{y{z{w{v}}}}{u}}",
]) + "\n"


def feed(monkeypatch, text):
    monkeypatch.setattr("sys.stdin", io.StringIO(text))


class TestJoinStream:
    def test_emits_pairs_and_summary(self, monkeypatch, capsys):
        feed(monkeypatch, BRACKET_LINES)
        assert main(["join", "--stream", "--tau", "1"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == ["0\t1\t1"]
        assert "streamed 3 trees" in captured.err
        assert "pending 0" in captured.err

    def test_json_events_and_stats(self, monkeypatch, capsys):
        feed(monkeypatch, BRACKET_LINES)
        assert main(["join", "--stream", "--tau", "1", "--json"]) == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.splitlines()]
        assert lines[0] == {"pair": [0, 1, 1]}
        stats = lines[-1]["stats"]
        assert stats["trees"] == 3
        assert stats["results"] == 1
        assert stats["pending_verification"] == 0
        assert "ingest_rate" in stats and "index_entries" in stats

    def test_ndjson_format(self, monkeypatch, capsys):
        payload = "\n".join(
            json.dumps({"tree": b, "id": k})
            for k, b in enumerate(("{a{b}}", "{a{c}}"))
        ) + "\n"
        feed(monkeypatch, payload)
        assert main([
            "join", "--stream", "--tau", "1", "--format", "ndjson",
        ]) == 0
        assert capsys.readouterr().out.splitlines() == ["0\t1\t1"]

    def test_micro_batch(self, monkeypatch, capsys):
        feed(monkeypatch, BRACKET_LINES)
        assert main([
            "join", "--stream", "--tau", "1", "--micro-batch", "2",
        ]) == 0
        assert capsys.readouterr().out.splitlines() == ["0\t1\t1"]

    def test_matches_batch_join_on_same_data(self, monkeypatch, tmp_path,
                                             capsys):
        path = tmp_path / "forest.trees"
        assert main([
            "generate", "--count", "25", "--seed", "6", "--size", "12",
            "--out", str(path),
        ]) == 0
        capsys.readouterr()  # discard the generate confirmation line
        assert main([
            "join", str(path), "--tau", "2", "--pairs", "--json",
        ]) == 0
        batch = json.loads(capsys.readouterr().out)["pairs"]
        feed(monkeypatch, "\n".join(
            tree.to_bracket() for tree in load_trees(path)
        ))
        assert main(["join", "--stream", "--tau", "2"]) == 0
        out = capsys.readouterr().out
        streamed = [[int(x) for x in line.split("\t")]
                    for line in out.splitlines()]
        assert sorted(streamed) == sorted(batch)

    def test_rejects_input_file_and_non_partsj(self, monkeypatch, capsys):
        feed(monkeypatch, BRACKET_LINES)
        assert main(["join", "somefile", "--stream", "--tau", "1"]) == 2
        assert "stdin" in capsys.readouterr().err
        feed(monkeypatch, BRACKET_LINES)
        assert main([
            "join", "--stream", "--tau", "1", "--method", "set",
        ]) == 2

    def test_missing_input_without_stream(self, capsys):
        assert main(["join", "--tau", "1"]) == 2
        assert "dataset file" in capsys.readouterr().err

    def test_bad_ndjson_line(self, monkeypatch, capsys):
        feed(monkeypatch, "not json\n")
        assert main([
            "join", "--stream", "--tau", "1", "--format", "ndjson",
        ]) == 2
        assert "line 1" in capsys.readouterr().err

    @pytest.mark.parametrize("line", ['{"tree": 5}', '[1, 2]', '{"other": "x"}'])
    def test_ndjson_without_bracket_string(self, monkeypatch, capsys, line):
        # Malformed payloads must fail as clean CLI errors, not tracebacks.
        feed(monkeypatch, line + "\n")
        assert main([
            "join", "--stream", "--tau", "1", "--format", "ndjson",
        ]) == 2
        assert "line 1" in capsys.readouterr().err


MALFORMED_LINES = "\n".join([
    "{a{b}{c{d}}}",
    "{{oops",            # line 2: unbalanced bracket
    "{a{b}{c{e}}}",
    "}stray",            # line 4: malformed too
    "{x{y{z{w{v}}}}{u}}",
]) + "\n"


class TestJoinStreamOnError:
    def test_default_fail_aborts_with_line_number(self, monkeypatch, capsys):
        feed(monkeypatch, MALFORMED_LINES)
        assert main(["join", "--stream", "--tau", "1"]) == 2
        captured = capsys.readouterr()
        assert "stdin line 2" in captured.err
        # Nothing after the bad line was processed.
        assert "stdin line 4" not in captured.err

    def test_skip_quarantines_and_finishes(self, monkeypatch, capsys):
        feed(monkeypatch, MALFORMED_LINES)
        assert main([
            "join", "--stream", "--tau", "1", "--on-error", "skip",
        ]) == 0
        captured = capsys.readouterr()
        # The join completed over the healthy lines.
        assert captured.out.splitlines() == ["0\t1\t1"]
        assert "# quarantined stdin line 2" in captured.err
        assert "# quarantined stdin line 4" in captured.err
        assert "streamed 3 trees" in captured.err
        assert "quarantined 2" in captured.err

    def test_skip_json_emits_quarantine_events(self, monkeypatch, capsys):
        feed(monkeypatch, MALFORMED_LINES)
        assert main([
            "join", "--stream", "--tau", "1", "--on-error", "skip", "--json",
        ]) == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.splitlines()]
        quarantines = [e["quarantine"] for e in lines if "quarantine" in e]
        assert [q["line"] for q in quarantines] == [2, 4]
        assert all("error" in q for q in quarantines)
        stats = lines[-1]["stats"]
        assert stats["trees"] == 3
        assert stats["quarantined_trees"] == 2
        assert len(stats["extra"]["quarantine_log"]) == 2

    def test_skip_ndjson_bad_json_line(self, monkeypatch, capsys):
        feed(monkeypatch, '{"tree": "{a{b}}"}\nnot json\n{"tree": "{a{c}}"}\n')
        assert main([
            "join", "--stream", "--tau", "1", "--format", "ndjson",
            "--on-error", "skip", "--json",
        ]) == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.splitlines()]
        assert [e["quarantine"]["line"] for e in lines
                if "quarantine" in e] == [2]
        assert lines[-1]["stats"]["trees"] == 2


class TestStatsStream:
    def test_reports_ingest_rate_and_index(self, monkeypatch, capsys):
        feed(monkeypatch, BRACKET_LINES)
        assert main(["stats", "--stream", "--tau", "2"]) == 0
        out = capsys.readouterr().out
        assert "streamed 3 trees" in out
        assert "trees/s" in out
        assert "warm index" in out
        assert "pending verification 0" in out
        assert "size histogram" in out

    def test_missing_input_without_stream(self, capsys):
        assert main(["stats"]) == 2
        assert "dataset file" in capsys.readouterr().err
