"""CLI experiment subcommand, run against a monkeypatched tiny scale."""

import pytest

import repro.bench.experiments as experiments_module
from repro.bench.experiments import SCALES, Scale
from repro.cli import main

TINY = Scale(
    name="tiny-cli",
    join_count=10,
    taus=(1,),
    cardinalities=(6, 10),
    card_tau=1,
    sens_count=10,
    sens_tau=1,
    fanouts=(2,),
    depths=(4,),
    label_counts=(5,),
    tree_sizes=(12,),
    ablation_count=10,
    datasets=("sentiment",),
)


@pytest.fixture(autouse=True)
def tiny_smoke(monkeypatch):
    """Make the CLI's 'smoke' scale actually tiny for these tests."""
    monkeypatch.setitem(SCALES, "smoke", TINY)
    yield
    # monkeypatch restores the original entry automatically.


def test_experiment_fig10(capsys):
    assert main(["experiment", "fig10", "--scale", "smoke", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "Figure 10" in out
    assert "cand gen (s)" in out  # runtime table present
    assert "REL" in out  # candidate table present


def test_experiment_fig11_candidates_only(capsys):
    assert main(["experiment", "fig11", "--scale", "smoke", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "cand gen (s)" not in out  # fig11 renders candidates only


def test_experiment_progress_goes_to_stderr(capsys):
    assert main(["experiment", "ablation_partitioning", "--scale", "smoke"]) == 0
    captured = capsys.readouterr()
    assert "[ablation_partitioning]" in captured.err
    assert "PRT[maxmin]" in captured.out
