"""The snapshot container (repro.persist.container) and atomic writes."""

import struct
import zlib

import pytest

from repro.errors import SnapshotFormatError, SnapshotIntegrityError
from repro.persist.atomic import atomic_write_bytes, replace_on_success
from repro.persist.container import (
    FORMAT_VERSION,
    MAGIC,
    encode_container,
    inspect_container,
    read_container,
    write_container,
)

SECTIONS = [
    ("meta", b'{"hello": 1}'),
    ("payload", bytes(range(256)) * 7),
    ("empty", b""),
]


def frame_offsets(data: bytes):
    """Parse the container framing; yields (name, payload_start, payload_end).

    Reimplemented from the spec in the module docstring (not imported from
    the code under test) so a framing bug cannot hide from these tests.
    """
    pos = len(MAGIC) + 4  # magic + format version
    (lib_len,) = struct.unpack_from("<H", data, pos)
    pos += 2 + lib_len
    (count,) = struct.unpack_from("<I", data, pos)
    pos += 4
    out = []
    for _ in range(count):
        (name_len,) = struct.unpack_from("<H", data, pos)
        pos += 2
        name = data[pos:pos + name_len].decode("utf-8")
        pos += name_len
        (payload_len,) = struct.unpack_from("<Q", data, pos)
        pos += 8 + 4  # length + crc
        out.append((name, pos, pos + payload_len))
        pos += payload_len
    assert pos == len(data)
    return out


class TestRoundTrip:
    def test_sections_and_order_survive(self, tmp_path):
        path = tmp_path / "c.snap"
        write_container(path, SECTIONS, library_version="9.9.9")
        library_version, sections = read_container(path)
        assert library_version == "9.9.9"
        assert list(sections.items()) == SECTIONS

    def test_inspect_reports_provenance(self, tmp_path):
        path = tmp_path / "c.snap"
        write_container(path, SECTIONS, library_version="9.9.9")
        info = inspect_container(path)
        assert info["format_version"] == FORMAT_VERSION
        assert info["library_version"] == "9.9.9"
        assert info["crc_ok"] is True
        assert [s["name"] for s in info["sections"]] == [n for n, _ in SECTIONS]
        assert [s["bytes"] for s in info["sections"]] == [
            len(p) for _, p in SECTIONS
        ]

    def test_encoding_is_deterministic(self):
        assert encode_container(SECTIONS, "1.0") == encode_container(
            SECTIONS, "1.0"
        )


class TestStructuralDamage:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "c.snap"
        path.write_bytes(b"NOTASNAP" + b"\x00" * 32)
        with pytest.raises(SnapshotFormatError, match="magic"):
            read_container(path)
        with pytest.raises(SnapshotFormatError):
            inspect_container(path)

    def test_unsupported_format_version(self, tmp_path):
        path = tmp_path / "c.snap"
        data = bytearray(encode_container(SECTIONS, "1.0"))
        struct.pack_into("<I", data, len(MAGIC), FORMAT_VERSION + 1)
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError, match="version"):
            read_container(path)

    def test_truncation_anywhere_in_framing(self, tmp_path):
        # Cut the file at every section boundary and a byte inside each
        # frame: every cut must be a typed structural error, never a
        # partial read.
        path = tmp_path / "c.snap"
        write_container(path, SECTIONS, library_version="1.0")
        data = path.read_bytes()
        cuts = {0, 4, len(MAGIC) + 2}
        for _, start, end in frame_offsets(data):
            cuts.update((start - 1, start, end - 1))
        for cut in sorted(cut for cut in cuts if cut < len(data)):
            path.write_bytes(data[:cut])
            with pytest.raises(SnapshotFormatError, match="truncated|magic"):
                read_container(path)

    def test_trailing_garbage(self, tmp_path):
        path = tmp_path / "c.snap"
        write_container(path, SECTIONS, library_version="1.0")
        path.write_bytes(path.read_bytes() + b"\x00garbage")
        with pytest.raises(SnapshotFormatError, match="trailing"):
            read_container(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotFormatError, match="cannot read"):
            read_container(tmp_path / "absent.snap")


class TestChecksumDamage:
    def test_bit_flip_in_every_section_is_detected(self, tmp_path):
        path = tmp_path / "c.snap"
        write_container(path, SECTIONS, library_version="1.0")
        pristine = path.read_bytes()
        for name, start, end in frame_offsets(pristine):
            if start == end:  # empty payload: nothing to flip
                continue
            damaged = bytearray(pristine)
            damaged[(start + end) // 2] ^= 0x01
            path.write_bytes(bytes(damaged))
            with pytest.raises(SnapshotIntegrityError, match=name):
                read_container(path)

    def test_inspect_survives_checksum_damage(self, tmp_path):
        path = tmp_path / "c.snap"
        write_container(path, SECTIONS, library_version="1.0")
        data = bytearray(path.read_bytes())
        name, start, end = frame_offsets(bytes(data))[1]
        data[start] ^= 0xFF
        path.write_bytes(bytes(data))
        info = inspect_container(path)
        assert info["crc_ok"] is False
        flags = {s["name"]: s["crc_ok"] for s in info["sections"]}
        assert flags == {"meta": True, "payload": False, "empty": True}

    def test_crc_is_crc32_of_payload(self):
        data = encode_container([("x", b"abc")], "1.0")
        assert struct.pack("<I", zlib.crc32(b"abc") & 0xFFFFFFFF) in data


class TestAtomicWrites:
    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "f.bin"
        atomic_write_bytes(path, b"old contents")
        with pytest.raises(RuntimeError):
            with replace_on_success(path) as tmp:
                tmp.write_bytes(b"half-writ")
                raise RuntimeError("crash mid-write")
        assert path.read_bytes() == b"old contents"
        assert list(tmp_path.iterdir()) == [path]  # temp cleaned up

    def test_successful_replace(self, tmp_path):
        path = tmp_path / "f.bin"
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"
        assert list(tmp_path.iterdir()) == [path]
