"""Session snapshots (repro.persist.snapshot): round trips and damage.

Two properties carry the feature:

1. **Bit-identical round trips** — a loaded session answers every query
   (all join methods, searches, streams, across taus and worker counts)
   exactly like the session that was saved.
2. **Never a wrong answer from damage** — every corrupted, truncated,
   version-mismatched or stale snapshot either raises a typed
   :class:`~repro.errors.PersistenceError` (explicit ``load``) or warns
   and rebuilds cold (implicit ``from_file`` sidecar), with results
   identical to a cold session in every fallback.
"""

import random
import struct

import pytest

from repro.core.join import PartSJConfig
from repro.datasets.io import save_trees
from repro.errors import (
    PersistenceError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    StaleSnapshotError,
)
from repro.persist.container import FORMAT_VERSION, MAGIC
from repro.persist.snapshot import (
    load_collection,
    sidecar_path,
    source_fingerprint,
)
from repro.session import TreeCollection
from tests.conftest import make_cluster_forest
from tests.persist.test_container import frame_offsets

TAUS = (1, 2, 3)
METHODS = ("partsj", "str", "set", "histogram", "nested_loop")
WORKERS = (1, 2)


def triples(pairs):
    return [(p.i, p.j, p.distance) for p in pairs]


@pytest.fixture(scope="module")
def forest():
    rng = random.Random(0xC0FFEE)
    return make_cluster_forest(
        rng, clusters=3, cluster_size=4, base_size=9, max_edits=3
    )


@pytest.fixture(scope="module")
def saved(forest, tmp_path_factory):
    """A session with every matrix tau prepared, snapshotted once."""
    col = TreeCollection.from_trees(forest)
    for tau in TAUS:
        col.prepare(tau)
        col.search(forest[0], tau).run()  # search index rides along
    path = tmp_path_factory.mktemp("snap") / "session.snapshot"
    col.save(path)
    return col, path


class TestRoundTripMatrix:
    def test_joins_bit_identical_across_the_matrix(self, saved):
        # taus {1,2,3} x five methods x workers {1,2}: the loaded session
        # returns byte-for-byte the pairs of the one that was saved.
        col, path = saved
        loaded = TreeCollection.load(path)
        for tau in TAUS:
            for method in METHODS:
                for workers in WORKERS:
                    expected = col.join(tau, method=method, workers=workers)
                    actual = loaded.join(tau, method=method, workers=workers)
                    assert triples(actual.run().pairs) == triples(
                        expected.run().pairs
                    ), (tau, method, workers)

    def test_searches_bit_identical(self, saved, forest):
        col, path = saved
        loaded = TreeCollection.load(path)
        for tau in TAUS:
            for query in forest[:4]:
                expected = col.search(query, tau).run()
                actual = loaded.search(query, tau).run()
                assert [(h.index, h.distance) for h in actual] == [
                    (h.index, h.distance) for h in expected
                ]

    def test_streams_bit_identical(self, saved):
        col, path = saved
        loaded = TreeCollection.load(path)
        assert triples(loaded.stream(2).run()) == triples(col.stream(2).run())

    def test_prepared_taus_and_config_survive(self, saved):
        col, path = saved
        loaded = TreeCollection.load(path)
        assert loaded.prepared_taus() == col.prepared_taus()
        # No re-partitioning happened to answer from the warm state.
        assert loaded.join(2).explain()["prepared"] is True

    def test_non_default_config_preparation_survives(self, forest, tmp_path):
        col = TreeCollection.from_trees(forest)
        config = PartSJConfig(semantics="paper", partition_strategy="random",
                              seed=11)
        expected = triples(col.join(2, config=config).run().pairs)
        path = tmp_path / "cfg.snapshot"
        col.save(path)
        loaded = TreeCollection.load(path)
        plan = loaded.join(2, config=config)
        assert plan.explain()["prepared"] is True  # the keyed prep restored
        assert triples(plan.run().pairs) == expected

    def test_provenance_and_stats(self, saved):
        col, path = saved
        loaded = TreeCollection.load(path)
        assert col.provenance is None
        assert loaded.provenance["path"] == str(path)
        assert sorted(loaded.provenance["restored_taus"]) == list(TAUS)
        assert loaded.stats()["snapshot"]["trees_embedded"] is True


class TestSidecar:
    @pytest.fixture
    def dataset(self, forest, tmp_path):
        path = tmp_path / "forest.trees"
        save_trees(forest, path)
        return path

    def warm_sidecar(self, dataset):
        col = TreeCollection.from_file(dataset, sidecar=None)
        col.join(2).run()
        col.save(sidecar_path(dataset), include_trees=False, source=dataset)
        return col

    def test_auto_discovery_restores_the_preparation(self, dataset):
        col = self.warm_sidecar(dataset)
        loaded = TreeCollection.from_file(dataset)
        assert loaded.prepared_taus() == [2]
        assert loaded.provenance is not None
        assert triples(loaded.join(2).run().pairs) == triples(
            col.join(2).run().pairs
        )

    def test_sidecar_none_disables_discovery(self, dataset):
        self.warm_sidecar(dataset)
        cold = TreeCollection.from_file(dataset, sidecar=None)
        assert cold.prepared_taus() == []
        assert cold.provenance is None

    def test_stale_sidecar_warns_and_rebuilds(self, dataset, forest):
        self.warm_sidecar(dataset)
        save_trees(forest[:-1], dataset)  # the dataset moved on
        with pytest.warns(UserWarning, match="rebuilding the session cold"):
            col = TreeCollection.from_file(dataset)
        assert col.prepared_taus() == []
        assert len(col) == len(forest) - 1  # the *current* dataset, always

    def test_stale_sidecar_raises_on_explicit_load(self, dataset, forest):
        self.warm_sidecar(dataset)
        save_trees(forest[:-1], dataset)
        with pytest.raises(StaleSnapshotError):
            load_collection(sidecar_path(dataset), expected_source=dataset)

    def test_sidecar_without_trees_needs_its_dataset(self, dataset):
        self.warm_sidecar(dataset)
        with pytest.raises(PersistenceError):
            TreeCollection.load(sidecar_path(dataset))  # no trees anywhere

    def test_source_fingerprint_tracks_content(self, dataset):
        before = source_fingerprint(dataset)
        dataset.write_bytes(dataset.read_bytes() + b"# comment\n")
        after = source_fingerprint(dataset)
        assert before["sha256"] != after["sha256"]
        assert before["name"] == after["name"]


class TestCorruptionMatrix:
    """Bit flips in every section, cuts at every boundary, bad versions."""

    @pytest.fixture
    def snapshot(self, forest, tmp_path):
        col = TreeCollection.from_trees(forest)
        col.join(1).run()
        col.join(2).run()
        path = tmp_path / "m.snapshot"
        col.save(path)
        return col, path

    def test_bit_flip_in_every_section_raises_typed(self, snapshot):
        col, path = snapshot
        pristine = path.read_bytes()
        sections = frame_offsets(pristine)
        assert [name for name, _, _ in sections] == [
            "meta", "trees", "interner", "order", "prep:0", "prep:1",
        ]
        for name, start, end in sections:
            for probe in (start, (start + end) // 2, end - 1):
                damaged = bytearray(pristine)
                damaged[probe] ^= 0x40
                path.write_bytes(bytes(damaged))
                with pytest.raises(SnapshotIntegrityError):
                    TreeCollection.load(path)

    def test_truncation_at_every_boundary_raises_typed(self, snapshot):
        col, path = snapshot
        pristine = path.read_bytes()
        for _, start, end in frame_offsets(pristine):
            for cut in (start - 4, start, end - 1):
                path.write_bytes(pristine[:cut])
                with pytest.raises(SnapshotFormatError):
                    TreeCollection.load(path)

    def test_version_mismatch_raises_typed(self, snapshot):
        col, path = snapshot
        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, len(MAGIC), FORMAT_VERSION + 7)
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError, match="version"):
            TreeCollection.load(path)

    def test_every_damage_mode_falls_back_cold_via_from_file(
        self, forest, tmp_path
    ):
        # The implicit path: same damage catalogue, but through the
        # dataset+sidecar route — each case must warn, rebuild cold, and
        # answer identically to a never-snapshotted session.
        dataset = tmp_path / "forest.trees"
        save_trees(forest, dataset)
        col = TreeCollection.from_file(dataset, sidecar=None)
        expected = triples(col.join(2).run().pairs)
        col.save(sidecar_path(dataset), include_trees=False, source=dataset)
        pristine = sidecar_path(dataset).read_bytes()

        damages = {"flip": None, "truncate": None, "version": None,
                   "garbage": None}
        _, start, end = frame_offsets(pristine)[2]
        flipped = bytearray(pristine)
        flipped[(start + end) // 2] ^= 0x02
        damages["flip"] = bytes(flipped)
        damages["truncate"] = pristine[:end - 2]
        versioned = bytearray(pristine)
        struct.pack_into("<I", versioned, len(MAGIC), 99)
        damages["version"] = bytes(versioned)
        damages["garbage"] = b"\x00" * 64

        for mode, blob in damages.items():
            sidecar_path(dataset).write_bytes(blob)
            with pytest.warns(UserWarning, match="rebuilding the session cold"):
                rebuilt = TreeCollection.from_file(dataset)
            assert rebuilt.provenance is None, mode
            assert triples(rebuilt.join(2).run().pairs) == expected, mode

    def test_doctored_payload_with_recomputed_crc_is_still_caught(
        self, snapshot
    ):
        # Defense in depth: even a *checksum-consistent* edit (an attacker
        # or cosmic-ray-with-luck scenario the CRC cannot see) trips the
        # load-time recomputation checks instead of answering wrongly.
        col, path = snapshot
        import zlib

        pristine = path.read_bytes()
        name, start, end = frame_offsets(pristine)[1]  # trees section
        assert name == "trees"
        payload = bytearray(pristine[start:end])
        brace = payload.index(ord("{"), 1)
        payload[brace - 1:brace] = b""  # drop a byte: tree list shifts
        doctored = bytearray(pristine[:start]) + payload + bytearray(
            pristine[end:]
        )
        struct.pack_into("<Q", doctored, start - 12, len(payload))
        struct.pack_into(
            "<I", doctored, start - 4, zlib.crc32(bytes(payload)) & 0xFFFFFFFF
        )
        path.write_bytes(bytes(doctored))
        with pytest.raises(PersistenceError):
            TreeCollection.load(path)
