"""The streaming write-ahead log (repro.persist.wal) and engine recovery."""

import struct
import zlib

import pytest

from repro.core.join import PartSJConfig
from repro.errors import (
    InvalidParameterError,
    SnapshotFormatError,
    WALCorruptError,
)
from repro.persist.wal import WAL_MAGIC, StreamWAL, scan_wal
from repro.stream import StreamingJoin
from repro.tree.bracket import to_bracket
from tests.conftest import make_cluster_forest

_FRAME = struct.Struct("<II")

BRACKETS = ["{a{b}{c}}", "{a{b}}", "{a{b}{c{d}}}", "{b{a}}"]


def write_log(path, brackets=BRACKETS, tau=1):
    wal = StreamWAL.create(path, tau, PartSJConfig().resolved())
    for bracket in brackets:
        wal.append(bracket)
    wal.close()
    return path


def record_spans(path):
    """(start, end) byte spans of each record, header first (from the spec)."""
    data = path.read_bytes()
    spans, pos = [], len(WAL_MAGIC)
    while pos < len(data):
        length, _ = _FRAME.unpack_from(data, pos)
        end = pos + _FRAME.size + length
        spans.append((pos, end))
        pos = end
    return spans


class TestRoundTrip:
    def test_scan_returns_header_and_arrivals(self, tmp_path):
        path = write_log(tmp_path / "s.wal", tau=3)
        scanned = scan_wal(path)
        assert scanned["header"]["tau"] == 3
        assert scanned["header"]["config"]["semantics"] == "safe"
        assert scanned["brackets"] == BRACKETS
        assert scanned["salvage"] == {
            "records": len(BRACKETS),
            "good_bytes": path.stat().st_size,
            "torn_bytes": 0,
        }

    def test_empty_log_scans_clean(self, tmp_path):
        path = write_log(tmp_path / "s.wal", brackets=[])
        assert scan_wal(path)["brackets"] == []

    def test_reopen_continues_the_record_count(self, tmp_path):
        path = write_log(tmp_path / "s.wal")
        scanned = scan_wal(path)
        wal = StreamWAL.reopen(
            path, scanned["salvage"]["good_bytes"], scanned["salvage"]["records"]
        )
        wal.append("{z}")
        wal.close()
        assert scan_wal(path)["brackets"] == BRACKETS + ["{z}"]

    def test_invalid_fsync_policy(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="fsync"):
            StreamWAL.create(
                tmp_path / "s.wal", 1, PartSJConfig().resolved(), fsync="wrong"
            )


class TestTornTail:
    @pytest.mark.parametrize("keep", [1, 4, 7, 11])
    def test_partial_final_frame_is_dropped(self, tmp_path, keep):
        # Crash mid-append: cut the final record `keep` bytes in (inside
        # the frame header and inside the payload).
        path = write_log(tmp_path / "s.wal")
        start, end = record_spans(path)[-1]
        data = path.read_bytes()
        assert start + keep < end
        path.write_bytes(data[:start + keep])
        scanned = scan_wal(path)
        assert scanned["brackets"] == BRACKETS[:-1]
        assert scanned["salvage"] == {
            "records": len(BRACKETS) - 1,
            "good_bytes": start,
            "torn_bytes": keep,
        }

    def test_corrupt_final_record_is_a_torn_tail(self, tmp_path):
        # A CRC failure on the last complete record with nothing after it
        # can only be a torn in-place overwrite; it is dropped, not fatal.
        path = write_log(tmp_path / "s.wal")
        start, end = record_spans(path)[-1]
        data = bytearray(path.read_bytes())
        data[end - 1] ^= 0xFF
        path.write_bytes(bytes(data))
        scanned = scan_wal(path)
        assert scanned["brackets"] == BRACKETS[:-1]
        assert scanned["salvage"]["good_bytes"] == start
        assert scanned["salvage"]["torn_bytes"] == end - start

    def test_reopen_truncates_the_torn_tail(self, tmp_path):
        path = write_log(tmp_path / "s.wal")
        start, _ = record_spans(path)[-1]
        path.write_bytes(path.read_bytes()[:start + 3])
        scanned = scan_wal(path)
        wal = StreamWAL.reopen(
            path, scanned["salvage"]["good_bytes"], scanned["salvage"]["records"]
        )
        wal.append("{fresh}")
        wal.close()
        assert scan_wal(path)["brackets"] == BRACKETS[:-1] + ["{fresh}"]


class TestMidLogCorruption:
    def test_flip_in_an_interior_record_refuses_to_replay(self, tmp_path):
        path = write_log(tmp_path / "s.wal")
        spans = record_spans(path)
        start, end = spans[2]  # second arrival — valid records follow
        data = bytearray(path.read_bytes())
        data[(start + end) // 2 + _FRAME.size // 2] ^= 0x10
        path.write_bytes(bytes(data))
        with pytest.raises(WALCorruptError, match="refusing to replay") as info:
            scan_wal(path)
        assert info.value.salvaged_records == 1  # arrivals before the hole
        assert info.value.good_bytes == start
        assert info.value.offset == start

    def test_corrupt_record_followed_by_torn_bytes_is_still_fatal(self, tmp_path):
        # Damage at rest *plus* a torn tail: the corrupt record is not the
        # final complete one once the tail is considered, so it's a hole.
        path = write_log(tmp_path / "s.wal")
        spans = record_spans(path)
        start, end = spans[-1]
        data = bytearray(path.read_bytes()[:end - 2])  # tear the last record
        prev_start, prev_end = spans[-2]
        data[prev_end - 1] ^= 0xFF  # and corrupt the one before it
        path.write_bytes(bytes(data))
        with pytest.raises(WALCorruptError):
            scan_wal(path)

    def test_corrupt_header_is_fatal(self, tmp_path):
        path = write_log(tmp_path / "s.wal")
        start, end = record_spans(path)[0]
        data = bytearray(path.read_bytes())
        data[end - 1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(WALCorruptError):
            scan_wal(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "s.wal"
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 16)
        with pytest.raises(SnapshotFormatError, match="magic"):
            scan_wal(path)

    def test_unsupported_header_version(self, tmp_path):
        path = write_log(tmp_path / "s.wal")
        data = path.read_bytes()
        start, end = record_spans(path)[0]
        payload = bytearray(data[start + _FRAME.size:end])
        patched = payload.replace(b'"format": 1', b'"format": 9')
        frame = _FRAME.pack(len(patched), zlib.crc32(bytes(patched)) & 0xFFFFFFFF)
        path.write_bytes(data[:start] + frame + bytes(patched) + data[end:])
        with pytest.raises(SnapshotFormatError, match="version"):
            scan_wal(path)


def pair_keys(pairs):
    return [(p.i, p.j, p.distance) for p in pairs]


class TestEngineRecovery:
    @pytest.fixture
    def forest(self, rng):
        return make_cluster_forest(
            rng, clusters=3, cluster_size=4, base_size=9, max_edits=3
        )

    def test_recover_matches_batch_over_the_logged_prefix(self, tmp_path, forest):
        path = tmp_path / "s.wal"
        with StreamingJoin(2, wal=str(path)) as engine:
            for tree in forest:
                engine.add(tree)
            engine.flush()
            expected = pair_keys(engine.results())

        recovered = StreamingJoin.recover(path)
        try:
            assert pair_keys(recovered.results()) == expected
            info = recovered.stats().extra["wal"]["recovered"]
            assert info["records"] == len(forest)
            assert info["torn_bytes"] == 0
        finally:
            recovered.close()

    def test_recover_from_torn_tail_then_continue(self, tmp_path, forest):
        # The engine crashed mid-append of the final arrival: recovery must
        # land exactly on the state of the logged prefix, then keep going
        # to the same final state as an uninterrupted run.
        path = tmp_path / "s.wal"
        with StreamingJoin(2, wal=str(path), wal_fsync="always") as engine:
            for tree in forest:
                engine.add(tree)
            engine.flush()
            full = pair_keys(engine.results())
        with StreamingJoin(2) as batch:
            batch.add_many(forest[:-1])
            batch.flush()
            prefix = pair_keys(batch.results())

        spans = record_spans(path)
        path.write_bytes(path.read_bytes()[:spans[-1][0] + 5])

        recovered = StreamingJoin.recover(path)
        try:
            assert pair_keys(recovered.results()) == prefix
            assert recovered.stats().extra["wal"]["recovered"]["torn_bytes"] == 5
            # resume=True reattached the log: re-ingest the lost arrival.
            recovered.add(forest[-1])
            recovered.flush()
            assert pair_keys(recovered.results()) == full
        finally:
            recovered.close()
        assert scan_wal(path)["salvage"]["records"] == len(forest)

    def test_recover_uses_the_logged_config(self, tmp_path, forest):
        path = tmp_path / "s.wal"
        config = PartSJConfig(semantics="paper", seed=7)
        with StreamingJoin(1, config=config, wal=str(path)) as engine:
            engine.add_many(forest[:4])
        recovered = StreamingJoin.recover(path)
        try:
            assert recovered.tau == 1
            assert recovered.config.semantics.value == "paper"
            assert recovered.config.seed == 7
        finally:
            recovered.close()

    def test_recover_refuses_a_mid_log_hole(self, tmp_path, forest):
        path = tmp_path / "s.wal"
        with StreamingJoin(1, wal=str(path)) as engine:
            engine.add_many(forest[:5])
        start, end = record_spans(path)[2]
        data = bytearray(path.read_bytes())
        data[end - 1] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(WALCorruptError) as info:
            StreamingJoin.recover(path)
        assert info.value.salvaged_records == 1

    def test_wal_records_every_arrival_before_indexing(self, tmp_path, forest):
        path = tmp_path / "s.wal"
        with StreamingJoin(1, wal=str(path)) as engine:
            for position, tree in enumerate(forest[:3]):
                engine.add(tree)
                # Write-ahead: the log already holds this arrival.
                assert scan_wal(path)["brackets"][position] == to_bracket(tree)

    def test_stats_expose_wal_counters(self, tmp_path, forest):
        path = tmp_path / "s.wal"
        with StreamingJoin(1, wal=str(path), wal_fsync="always") as engine:
            engine.add_many(forest[:3])
            wal_stats = engine.stats().extra["wal"]
            assert wal_stats["records"] == 3
            assert wal_stats["synced_records"] == 3
            assert wal_stats["fsync"] == "always"

    def test_fresh_engine_truncates_an_existing_log(self, tmp_path, forest):
        path = write_log(tmp_path / "s.wal")
        with StreamingJoin(1, wal=str(path)) as engine:
            engine.add(forest[0])
        assert scan_wal(path)["brackets"] == [to_bracket(forest[0])]
