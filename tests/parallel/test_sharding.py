"""Shard-plan invariants: coverage, handoff bands, balance, degeneracy.

Pure planning tests — no worker pool is started.  The executor-level
equivalence (identical join results at every worker count) lives in
``test_parallel_join.py``.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.common import SizeSortedCollection
from repro.errors import InvalidParameterError
from repro.parallel.sharding import estimated_probe_cost, plan_shards
from tests.conftest import make_random_tree


def make_forest(rng, count, min_size=2, max_size=30):
    return [make_random_tree(rng, rng.randint(min_size, max_size))
            for _ in range(count)]


def check_plan_invariants(collection, tau, plans):
    """The structural properties every legal plan must satisfy."""
    sizes = collection.sizes
    order = collection.order
    # Owned runs are non-empty, contiguous, and cover the sorted order.
    assert all(plan.owned for plan in plans)
    covered = [i for plan in plans for i in plan.owned]
    assert covered == list(order)
    for plan in plans:
        assert plan.owned == tuple(order[plan.start:plan.stop])
        assert plan.lo == sizes[plan.start]
        assert plan.hi == sizes[plan.stop - 1]
        # The band is exactly the earlier positions within tau of lo.
        assert plan.band == tuple(order[plan.band_start:plan.start])
        for position in range(plan.band_start, plan.start):
            assert sizes[position] >= plan.lo - tau
        if plan.band_start > 0:
            assert sizes[plan.band_start - 1] < plan.lo - tau
    # Shard ids are dense and ordered.
    assert [plan.shard_id for plan in plans] == list(range(len(plans)))


class TestPlanShards:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        count=st.integers(min_value=0, max_value=60),
        tau=st.integers(min_value=0, max_value=4),
        workers=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=120, deadline=None)
    def test_invariants_hold_for_random_collections(
        self, seed, count, tau, workers
    ):
        rng = random.Random(seed)
        collection = SizeSortedCollection(make_forest(rng, count))
        plans = plan_shards(collection, tau, workers)
        if count == 0:
            assert plans == []
            return
        assert 1 <= len(plans) <= min(workers, count)
        check_plan_invariants(collection, tau, plans)

    def test_all_trees_one_size_still_shards(self, rng):
        # Degenerate: a single size run.  Boundaries split the run and the
        # band re-inserts the earlier equal-size trees.
        trees = [make_random_tree(rng, 12) for _ in range(20)]
        collection = SizeSortedCollection(trees)
        plans = plan_shards(collection, tau=2, workers=4)
        assert len(plans) == 4
        check_plan_invariants(collection, 2, plans)
        for plan in plans[1:]:
            # Every earlier tree is within tau of lo (same size), so the
            # band is the whole prefix.
            assert plan.band_start == 0

    def test_collection_smaller_than_worker_count(self, rng):
        trees = make_forest(rng, 3)
        collection = SizeSortedCollection(trees)
        plans = plan_shards(collection, tau=1, workers=8)
        assert len(plans) == 3
        check_plan_invariants(collection, 1, plans)

    def test_empty_collection(self):
        assert plan_shards(SizeSortedCollection([]), tau=1, workers=4) == []

    def test_single_tree(self, rng):
        collection = SizeSortedCollection([make_random_tree(rng, 5)])
        plans = plan_shards(collection, tau=3, workers=4)
        assert len(plans) == 1
        assert plans[0].band == ()
        check_plan_invariants(collection, 3, plans)

    def test_first_shard_has_empty_band(self, rng):
        collection = SizeSortedCollection(make_forest(rng, 30))
        plans = plan_shards(collection, tau=2, workers=3)
        assert plans[0].band == ()

    def test_cost_balance_within_factor(self, rng):
        # Uniform-ish forest: no shard should end up with more than ~2x
        # the ideal share of estimated cost (loose, but catches a planner
        # that dumps everything into one shard).
        collection = SizeSortedCollection(make_forest(rng, 200, 10, 40))
        plans = plan_shards(collection, tau=2, workers=4)
        assert len(plans) == 4
        total = sum(plan.est_cost for plan in plans)
        for plan in plans:
            assert plan.est_cost <= 2 * total / len(plans)

    def test_gapped_sizes_bound_the_band(self, rng):
        # Sizes 5 and 40 only: with tau=2 no size-40 shard can need the
        # size-5 trees, so its band stays empty.
        trees = [make_random_tree(rng, 5) for _ in range(10)]
        trees += [make_random_tree(rng, 40) for _ in range(10)]
        collection = SizeSortedCollection(trees)
        plans = plan_shards(collection, tau=2, workers=2)
        check_plan_invariants(collection, 2, plans)
        for plan in plans:
            if plan.lo == 40:
                assert all(
                    collection.sizes[q] >= 38
                    for q in range(plan.band_start, plan.start)
                )

    def test_invalid_parameters(self, rng):
        collection = SizeSortedCollection(make_forest(rng, 4))
        with pytest.raises(InvalidParameterError):
            plan_shards(collection, tau=1, workers=0)
        with pytest.raises(InvalidParameterError):
            plan_shards(collection, tau=-1, workers=2)


class TestSizeHistogram:
    def test_runs_match_sizes(self, rng):
        trees = make_forest(rng, 50)
        collection = SizeSortedCollection(trees)
        histogram = collection.size_histogram()
        # Expansion reproduces the sorted sizes exactly.
        expanded = [size for size, count in histogram for _ in range(count)]
        assert expanded == collection.sizes
        # Strictly ascending distinct sizes.
        assert [s for s, _ in histogram] == sorted({t.size for t in trees})

    def test_cached(self, rng):
        collection = SizeSortedCollection(make_forest(rng, 10))
        assert collection.size_histogram() is collection.size_histogram()

    def test_empty(self):
        assert SizeSortedCollection([]).size_histogram() == []


def test_estimated_probe_cost_scales_with_size_and_tau():
    assert estimated_probe_cost(10, 2) == 40
    assert estimated_probe_cost(20, 2) > estimated_probe_cost(10, 2)
    assert estimated_probe_cost(10, 3) > estimated_probe_cost(10, 2)


class TestShardPlanner:
    """The re-plan hook: cached while unchanged, fresh after growth."""

    def test_caches_plan_for_unchanged_collection(self, rng):
        from repro.parallel.sharding import ShardPlanner

        collection = SizeSortedCollection(make_forest(rng, 20))
        planner = ShardPlanner(collection, tau=2)
        first = planner.plan(3)
        assert planner.plan(3) is first
        assert planner.replans == 1
        # A different worker count is its own cache slot.
        other = planner.plan(2)
        assert other is not first
        assert planner.replans == 2
        assert planner.plan(3) is first

    def test_replans_after_insertion(self, rng):
        from repro.parallel.sharding import ShardPlanner

        collection = SizeSortedCollection(make_forest(rng, 20))
        planner = ShardPlanner(collection, tau=2)
        stale = planner.plan(3)
        for _ in range(10):
            collection.insert(make_random_tree(rng, rng.randint(40, 60)))
        fresh = planner.plan(3)
        assert fresh is not stale
        check_plan_invariants(collection, 2, fresh)
        assert planner.plan(3) is fresh

    def test_invalidate_forces_replan(self, rng):
        from repro.parallel.sharding import ShardPlanner

        collection = SizeSortedCollection(make_forest(rng, 10))
        planner = ShardPlanner(collection, tau=1)
        first = planner.plan(2)
        planner.invalidate()
        assert planner.plan(2) is not first

    def test_invalid_parameters(self, rng):
        from repro.parallel.sharding import ShardPlanner

        with pytest.raises(InvalidParameterError):
            ShardPlanner(SizeSortedCollection([]), tau=-1)
        planner = ShardPlanner(SizeSortedCollection(make_forest(rng, 3)), tau=1)
        with pytest.raises(InvalidParameterError):
            planner.plan(0)
