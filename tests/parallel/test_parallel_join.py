"""Shard-boundary equivalence: the parallel executor vs the serial engine.

The acceptance bar of the subsystem: at every ``workers`` setting the join
returns a **bit-identical** result — same pair set, same exact distances,
same canonical ordering — including degenerate shard layouts (all trees
one size, collections smaller than the worker count, empty ranges).  Real
worker pools are started, so the workloads are kept small.
"""

import json
import random

import pytest

from repro.api import similarity_join
from repro.baselines.histogram_join import histogram_join
from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.set_join import set_join
from repro.baselines.str_join import str_join
from repro.cli import main
from repro.core.join import PartSJConfig, partsj_join
from repro.errors import InvalidParameterError
from repro.parallel.executor import parallel_partsj_join
from repro.tree.node import Tree
from tests.conftest import LABELS, make_cluster_forest, make_random_tree

WORKER_COUNTS = (1, 2, 4)
TAUS = (1, 2, 3)


def triples(result):
    return [(p.i, p.j, p.distance) for p in result.pairs]


def make_workload(seed, clusters=3, cluster_size=3, base_size=10, max_edits=3):
    rng = random.Random(seed)
    return make_cluster_forest(
        rng, clusters=clusters, cluster_size=cluster_size,
        base_size=base_size, max_edits=max_edits,
    )


# Owned-tree counters that must merge to the exact serial values.
SERIAL_COUNTERS = (
    "probe_hits", "match_tests", "match_hits", "small_pool_pairs",
    "partitioned_trees", "small_trees", "subgraphs_built", "gamma_total",
)


class TestShardBoundaryProperty:
    @pytest.mark.parametrize("seed", (101, 202, 303))
    @pytest.mark.parametrize("tau", TAUS)
    def test_identical_pairs_across_worker_counts(self, seed, tau):
        trees = make_workload(seed)
        reference = None
        for workers in WORKER_COUNTS:
            result = partsj_join(trees, tau, PartSJConfig(workers=workers))
            if reference is None:
                reference = triples(result)
            else:
                assert triples(result) == reference, (seed, tau, workers)

    @pytest.mark.parametrize("tau", TAUS)
    def test_owned_counters_merge_to_serial(self, tau):
        trees = make_workload(404, clusters=4, cluster_size=3)
        serial = partsj_join(trees, tau)
        parallel = partsj_join(trees, tau, PartSJConfig(workers=4))
        assert triples(parallel) == triples(serial)
        assert parallel.stats.candidates == serial.stats.candidates
        assert parallel.stats.ted_calls == serial.stats.ted_calls
        for key in SERIAL_COUNTERS:
            assert parallel.stats.extra[key] == serial.stats.extra[key], key
        assert (
            parallel.stats.extra["total_index_entries"]
            == serial.stats.extra["total_index_entries"]
        )
        # The sharded run did extra band work and reported it separately.
        assert parallel.stats.extra["band_trees"] >= 0
        assert serial.stats.extra["band_trees"] == 0


class TestDegenerateShards:
    def test_all_trees_one_size(self, rng):
        # One size run: every shard boundary splits it and every band is
        # the full prefix — the hardest layout for the dedup invariant.
        trees = [make_random_tree(rng, 9) for _ in range(16)]
        for tau in (1, 2):
            serial = partsj_join(trees, tau)
            parallel = partsj_join(trees, tau, PartSJConfig(workers=4))
            assert triples(parallel) == triples(serial)

    def test_collection_smaller_than_worker_count(self, rng):
        trees = [make_random_tree(rng, rng.randint(4, 9)) for _ in range(3)]
        serial = partsj_join(trees, 2)
        parallel = partsj_join(trees, 2, PartSJConfig(workers=8))
        assert triples(parallel) == triples(serial)

    def test_empty_and_single_tree(self):
        assert partsj_join([], 1, PartSJConfig(workers=4)).pairs == []
        one = [Tree.from_bracket("{a{b}}")]
        assert partsj_join(one, 1, PartSJConfig(workers=4)).pairs == []

    def test_tiny_trees_use_small_pool_across_shards(self, rng):
        # All trees below the partitionable minimum: candidate generation
        # runs entirely through the small-tree pool, which the handoff
        # band must replicate per shard.
        trees = [make_random_tree(rng, rng.randint(1, 4)) for _ in range(14)]
        for tau in (1, 2):
            serial = partsj_join(trees, tau)
            parallel = partsj_join(trees, tau, PartSJConfig(workers=3))
            assert triples(parallel) == triples(serial)

    def test_size_gaps_larger_than_tau(self, rng):
        # Empty size ranges between shards: bands must stay empty across
        # the gaps and no cross-gap candidates exist.
        trees = [make_random_tree(rng, 4) for _ in range(6)]
        trees += [make_random_tree(rng, 20) for _ in range(6)]
        trees += [make_random_tree(rng, 40) for _ in range(6)]
        serial = partsj_join(trees, 2)
        parallel = partsj_join(trees, 2, PartSJConfig(workers=3))
        assert triples(parallel) == triples(serial)


class TestExecutorConfig:
    def test_workers_one_is_serial_engine(self, sample_forest):
        # The executor entry point itself falls back to the serial path.
        serial = partsj_join(sample_forest, 2)
        fallback = parallel_partsj_join(
            sample_forest, 2, PartSJConfig(workers=1)
        )
        assert triples(fallback) == triples(serial)
        assert "shards" not in fallback.stats.extra

    def test_respects_filter_configuration(self, sample_forest):
        config = PartSJConfig(
            semantics="paper", postorder_filter="safe", workers=3
        )
        serial = partsj_join(
            sample_forest, 2, PartSJConfig(semantics="paper")
        )
        parallel = partsj_join(sample_forest, 2, config)
        assert triples(parallel) == triples(serial)

    def test_invalid_workers_rejected(self, sample_forest):
        with pytest.raises(InvalidParameterError, match="workers"):
            partsj_join(sample_forest, 1, PartSJConfig(workers=0))
        with pytest.raises(InvalidParameterError, match="workers"):
            similarity_join(sample_forest, 1, method="str", workers=0)

    def test_api_workers_composes_with_config(self, sample_forest):
        result = similarity_join(
            sample_forest, 1, config=PartSJConfig(semantics="paper"), workers=2
        )
        assert result.stats.extra["workers"] == 2
        assert triples(result) == triples(
            similarity_join(sample_forest, 1, semantics="paper")
        )

    def test_parallel_stats_surface_shard_breakdown(self, sample_forest):
        result = partsj_join(sample_forest, 2, PartSJConfig(workers=2))
        shards = result.stats.extra["shards"]
        assert len(shards) >= 2
        for entry in shards:
            assert {"shard", "size_range", "owned_trees", "band_trees",
                    "candidates", "probe_time", "index_time", "band_time",
                    "wall_time"} <= set(entry)
        assert result.stats.extra["workers"] == 2
        assert result.stats.extra["verify_chunks"] >= 1


class TestParallelVerificationAllMethods:
    @pytest.mark.parametrize("join", [
        lambda t, tau, w: partsj_join(t, tau, PartSJConfig(workers=w)),
        lambda t, tau, w: str_join(t, tau, workers=w),
        lambda t, tau, w: set_join(t, tau, workers=w),
        lambda t, tau, w: histogram_join(t, tau, workers=w),
        lambda t, tau, w: nested_loop_join(t, tau, workers=w),
    ], ids=["partsj", "str", "set", "histogram", "nested_loop"])
    def test_each_method_identical_with_two_workers(self, join):
        trees = make_workload(555)
        serial = join(trees, 2, 1)
        parallel = join(trees, 2, 2)
        assert triples(parallel) == triples(serial)
        assert parallel.stats.candidates == serial.stats.candidates
        assert parallel.stats.ted_calls == serial.stats.ted_calls

    def test_str_unbanded_parallel(self):
        trees = make_workload(666)
        serial = str_join(trees, 2, banded=False)
        parallel = str_join(trees, 2, banded=False, workers=2)
        assert triples(parallel) == triples(serial)


class TestCliWorkers:
    def test_join_workers_json(self, tmp_path, capsys):
        path = tmp_path / "forest.trees"
        assert main([
            "generate", "--count", "24", "--seed", "9", "--size", "14",
            "--out", str(path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "join", str(path), "--tau", "2", "--json", "--workers", "2",
        ]) == 0
        parallel_payload = json.loads(capsys.readouterr().out)
        assert main(["join", str(path), "--tau", "2", "--json"]) == 0
        serial_payload = json.loads(capsys.readouterr().out)
        assert parallel_payload["pairs"] == serial_payload["pairs"]
        assert parallel_payload["stats"]["workers"] == 2
        shards = parallel_payload["stats"]["extra"]["shards"]
        assert shards and all("wall_time" in entry for entry in shards)
