"""Unit tests for :mod:`repro.obs.export`: JSONL, Prometheus, span trees."""

import json

import pytest

from repro.obs.export import (
    format_span_tree,
    read_jsonl,
    render_prometheus,
    span_roots,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, span_dict


def sample_tracer() -> Tracer:
    tracer = Tracer(trace_id="feedc0de00000000")
    with tracer.span("join", tau=1):
        with tracer.span("partsj.loop"):
            tracer.record("partsj.probe", 0.001, probe_hits=3)
    return tracer


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = sample_tracer()
        path = tmp_path / "trace.jsonl"
        written = write_jsonl(tracer.finished(), path)
        assert written == 3
        rows = read_jsonl(path)
        assert {row["name"] for row in rows} == {
            "join", "partsj.loop", "partsj.probe"
        }
        assert all(row["trace_id"] == "feedc0de00000000" for row in rows)

    def test_accepts_dicts_too(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert write_jsonl([span_dict("s", 0.0, 0.1, "x-1")], path) == 1
        assert read_jsonl(path)[0]["name"] == "s"

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(sample_tracer().finished(), path)
        for line in path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"span_id": "a", "name": "s"}\n\n\n')
        assert len(read_jsonl(path)) == 1

    def test_bad_json_reports_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"span_id": "a", "name": "s"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl(path)

    def test_non_span_object_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "missing id"}\n')
        with pytest.raises(ValueError, match="span_id"):
            read_jsonl(path)


class TestRenderPrometheus:
    def test_counter_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "Things counted", method="partsj").inc(3)
        text = render_prometheus(reg)
        assert "# HELP repro_x_total Things counted\n" in text
        assert "# TYPE repro_x_total counter\n" in text
        assert 'repro_x_total{method="partsj"} 3\n' in text
        assert text.endswith("\n")

    def test_gauge_without_labels(self):
        reg = MetricsRegistry()
        reg.gauge("repro_g", "A gauge").set(1.5)
        assert "repro_g 1.5" in render_prometheus(reg).splitlines()

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_h_seconds", "Walls", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        lines = render_prometheus(reg).splitlines()
        assert 'repro_h_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_h_seconds_bucket{le="1"} 2' in lines
        assert 'repro_h_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_h_seconds_count 3" in lines
        assert any(line.startswith("repro_h_seconds_sum ") for line in lines)

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", path='a"b\\c\nd').inc()
        text = render_prometheus(reg)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_exposition_is_parseable(self):
        """Structural format check: every non-comment line is
        ``name{labels} value`` with a float-parseable value."""
        reg = MetricsRegistry()
        reg.counter("a_total", "x", k="v").inc(2)
        reg.gauge("b", "y").set(0.25)
        reg.histogram("c_seconds", "z").observe(0.01)
        for line in render_prometheus(reg).splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            if value != "+Inf":
                float(value)


class TestSpanRoots:
    def test_forest_partition(self):
        rows = [
            span_dict("root", 0.0, 1.0, "a"),
            span_dict("child", 0.1, 0.5, "b", parent_id="a"),
            span_dict("orphan", 0.2, 0.1, "c", parent_id="missing"),
        ]
        roots, children = span_roots(rows)
        assert {row["name"] for row in roots} == {"root", "orphan"}
        assert [c["name"] for c in children["a"]] == ["child"]

    def test_cycle_detected(self):
        rows = [
            span_dict("a", 0.0, 1.0, "a", parent_id="b"),
            span_dict("b", 0.0, 1.0, "b", parent_id="a"),
        ]
        with pytest.raises(ValueError, match="cycle"):
            span_roots(rows)


class TestFormatSpanTree:
    def test_empty_trace(self):
        assert format_span_tree([]) == "(empty trace)"

    def test_renders_nesting_durations_attrs(self):
        text = format_span_tree(sample_tracer().finished())
        lines = text.splitlines()
        assert lines[0] == "trace feedc0de00000000"
        assert any("join" in line and "ms" in line for line in lines)
        probe = next(line for line in lines if "partsj.probe" in line)
        assert "probe_hits=3" in probe
        # children indented under parents
        join_line = next(line for line in lines if "  join" in line)
        loop_line = next(line for line in lines if "partsj.loop" in line)
        assert loop_line.index("partsj.loop") > join_line.index("join")

    def test_open_span_rendered_without_duration(self):
        rows = [span_dict("open", 0.0, None, "a")]
        rows[0]["duration"] = None
        assert "open" in format_span_tree(rows)
