"""Tracing across the streaming and persistence tiers.

Same invariant as the batch tier: spans cover flushes, WAL appends /
syncs / recovery and snapshot save / load, while pairs and stats stay
bit-identical with tracing on or off.
"""

import asyncio
import random

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.persist.snapshot import load_collection, save_collection
from repro.session import TreeCollection
from repro.stream.engine import StreamingJoin
from repro.stream.service import StreamJoinService
from tests.conftest import make_cluster_forest


@pytest.fixture(scope="module")
def arrivals():
    rng = random.Random(23)
    return make_cluster_forest(
        rng, clusters=3, cluster_size=3, base_size=8, max_edits=2
    )


def stream_pairs(trees, tau, tracer=None, **kwargs):
    with StreamingJoin(tau, tracer=tracer, **kwargs) as join:
        pairs = []
        for tree in trees:
            pairs.extend(join.add(tree))
        pairs.extend(join.flush())
        return pairs, join.stats()


class TestStreamingTracing:
    def test_traced_stream_is_bit_identical(self, arrivals):
        plain, plain_stats = stream_pairs(arrivals, 1)
        tracer = Tracer()
        traced, traced_stats = stream_pairs(arrivals, 1, tracer=tracer)
        key = lambda pairs: [(p.i, p.j, p.distance) for p in pairs]
        assert key(traced) == key(plain)
        assert traced_stats.trees == plain_stats.trees
        assert traced_stats.results == plain_stats.results
        assert traced_stats.candidates == plain_stats.candidates
        names = {span.name for span in tracer.finished()}
        assert "stream.flush" in names

    def test_wal_append_and_sync_spans(self, arrivals, tmp_path):
        wal = tmp_path / "stream.wal"
        tracer = Tracer()
        stream_pairs(arrivals[:4], 1, tracer=tracer, wal=str(wal))
        names = [span.name for span in tracer.finished()]
        assert names.count("wal.append") == 4
        assert "wal.sync" in names
        appended = [s for s in tracer.finished() if s.name == "wal.append"]
        assert [s.attrs["arrival"] for s in appended] == [0, 1, 2, 3]

    def test_recover_span_with_record_count(self, arrivals, tmp_path):
        wal = tmp_path / "stream.wal"
        plain, _ = stream_pairs(arrivals, 1, wal=str(wal))
        tracer = Tracer()
        engine = StreamingJoin.recover(str(wal), tracer=tracer)
        try:
            recovered = engine.results()
        finally:
            engine.close()
        key = lambda pairs: [(p.i, p.j, p.distance) for p in pairs]
        assert key(recovered) == key(plain)
        (span,) = [s for s in tracer.finished() if s.name == "wal.recover"]
        assert span.attrs["records"] == len(arrivals)

    def test_stream_plan_threads_tracer(self, arrivals):
        col = TreeCollection.from_trees(arrivals)
        tracer = Tracer()
        pairs = col.stream(1).run(trace=tracer)
        plain = col.stream(1).run()
        key = lambda ps: [(p.i, p.j, p.distance) for p in ps]
        assert key(pairs) == key(plain)
        assert any(s.name == "stream.flush" for s in tracer.finished())


class TestSnapshotTracing:
    def test_save_and_load_spans(self, arrivals, tmp_path):
        col = TreeCollection.from_trees(arrivals)
        col.prepare(1)
        path = tmp_path / "session.repro-idx"
        tracer = Tracer()
        save_collection(col, path, tracer=tracer)
        loaded = load_collection(path, tracer=tracer)
        names = [span.name for span in tracer.finished()]
        assert "snapshot.save" in names
        assert "snapshot.load" in names
        save_span = next(s for s in tracer.finished()
                         if s.name == "snapshot.save")
        assert save_span.attrs["trees"] == len(arrivals)
        load_span = next(s for s in tracer.finished()
                         if s.name == "snapshot.load")
        assert load_span.attrs["trees"] == len(arrivals)
        assert load_span.attrs["restored_taus"] == [1]
        # The traced load restored a working session.
        assert len(loaded) == len(arrivals)

    def test_untraced_save_load_unchanged(self, arrivals, tmp_path):
        col = TreeCollection.from_trees(arrivals)
        path = tmp_path / "session.repro-idx"
        save_collection(col, path)
        assert len(load_collection(path)) == len(arrivals)


class TestServiceMetricsFanOut:
    def test_stats_publishes_into_registry(self, arrivals):
        async def scenario():
            registry = MetricsRegistry()
            async with StreamJoinService(tau=1, registry=registry) as service:
                await service.ingest_many(arrivals)
                snapshot = await service.stats()
            return registry, snapshot

        registry, snapshot = asyncio.run(scenario())
        snap = registry.snapshot()
        assert snap["repro_stream_trees"][()] == snapshot.trees
        # stats() once + the final close() publish
        assert snap["repro_stream_snapshots_total"][()] == 2

    def test_close_publishes_even_without_stats_calls(self, arrivals):
        async def scenario():
            registry = MetricsRegistry()
            async with StreamJoinService(tau=1, registry=registry) as service:
                await service.ingest(arrivals[0])
            return registry

        registry = asyncio.run(scenario())
        assert registry.snapshot()["repro_stream_snapshots_total"][()] == 1

    def test_service_threads_tracer_to_engine(self, arrivals):
        async def scenario():
            tracer = Tracer()
            service = StreamJoinService(tau=1, tracer=tracer)
            await service.ingest_many(arrivals[:3])
            await service.flush()
            await service.close()
            return tracer

        tracer = asyncio.run(scenario())
        assert any(s.name == "stream.flush" for s in tracer.finished())
