"""The observability invariant: tracing never changes results.

The acceptance bar of the obs layer — pairs, distances and every
deterministic ``JoinStats`` field are bit-identical with tracing on,
off, and under injected worker faults; traces actually cover the
execution (per-shard probe/index spans relayed from worker processes);
and the no-op tracer records nothing.
"""

import multiprocessing
import random

import pytest

from repro.core.join import PartSJConfig, partsj_join
from repro.obs.export import span_roots, write_jsonl, read_jsonl
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.parallel.executor import merge_counters
from repro.parallel.sharding import ShardResult
from repro.resilience import FaultInjector, RetryPolicy
from repro.session import TreeCollection
from tests.conftest import make_cluster_forest

METHODS = ("partsj", "str", "set", "histogram", "nested_loop")
TAUS = (1, 2)
WORKER_COUNTS = (1, 2)

# Deterministic JoinStats fields (times excluded: wall clocks differ
# run to run whether or not tracing is on).
STAT_FIELDS = ("method", "tau", "tree_count", "candidates", "results",
               "ted_calls", "pairs_considered")

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

CHAOS_POLICY = RetryPolicy(
    max_attempts=3, task_timeout=5.0, backoff_base=0.0, jitter=0.0
)


@pytest.fixture(scope="module")
def forest():
    rng = random.Random(17)
    return make_cluster_forest(
        rng, clusters=3, cluster_size=3, base_size=9, max_edits=2
    )


def triples(result):
    return [(p.i, p.j, p.distance) for p in result.pairs]


def deterministic_stats(stats) -> dict:
    """The comparable slice of JoinStats: counts plus integer counters."""
    fields = {name: getattr(stats, name) for name in STAT_FIELDS}
    fields["extra_counters"] = {
        key: value for key, value in sorted((stats.extra or {}).items())
        if isinstance(value, int) and not isinstance(value, bool)
    }
    return fields


def run_join(forest, method, tau, workers, trace=None):
    # A fresh collection per run: no result-cache or prepared-state
    # sharing between the traced and untraced executions under test.
    col = TreeCollection.from_trees(forest)
    return col.join(tau, method=method, workers=workers).run(trace=trace)


class TestTracedRunsAreBitIdentical:
    """Satellite: every method x tau x workers, tracing on == off."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("tau", TAUS)
    @pytest.mark.parametrize("method", METHODS)
    def test_identity(self, forest, method, tau, workers):
        if workers > 1 and not HAVE_FORK:
            pytest.skip("worker pools need fork on this platform")
        untraced = run_join(forest, method, tau, workers)
        tracer = Tracer()
        traced = run_join(forest, method, tau, workers, trace=tracer)
        assert triples(traced) == triples(untraced)
        assert deterministic_stats(traced.stats) == \
            deterministic_stats(untraced.stats)
        # ... and the traced run really did trace.
        names = [span.name for span in tracer.finished()]
        assert "join" in names

    def test_span_data_never_reaches_stats(self, forest):
        """Structural leak check: no span-shaped keys in JoinStats."""
        tracer = Tracer()
        result = run_join(forest, "partsj", 1, 2 if HAVE_FORK else 1,
                          trace=tracer)
        assert "spans" not in (result.stats.extra or {})
        for key in (result.stats.extra or {}):
            assert "span" not in key


class TestTracedUnderFaults:
    """Tracing + injected worker faults still returns serial results."""

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork pools")
    @pytest.mark.parametrize("spec", [
        "shard:*@1=crash",
        "shard:*@1=crash,verify:*@1=crash",
    ])
    def test_fault_identity(self, forest, spec):
        serial = triples(partsj_join(forest, 1))
        tracer = Tracer()
        cfg = PartSJConfig(
            workers=2, retry=CHAOS_POLICY,
            fault_injector=FaultInjector.from_spec(spec),
        )
        result = partsj_join(forest, 1, cfg, tracer=tracer)
        assert triples(result) == serial
        assert result.stats.extra["retries"] >= 1
        # Retried shards still relay their spans from the attempt that
        # succeeded: coverage survives the chaos.
        names = [span.name for span in tracer.finished()]
        assert any(name.startswith("shard:") for name in names)

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork pools")
    def test_fault_spec_env_hook_identity(self, forest, monkeypatch):
        """Faults injected via REPRO_FAULT_SPEC, tracing on: same pairs."""
        from repro.resilience import FAULT_SPEC_ENV

        serial = triples(partsj_join(forest, 1))
        monkeypatch.setenv(FAULT_SPEC_ENV, "shard:*@1=crash")
        tracer = Tracer()
        result = partsj_join(
            forest, 1, PartSJConfig(workers=2, retry=CHAOS_POLICY),
            tracer=tracer,
        )
        assert triples(result) == serial
        assert result.stats.extra["retries"] >= 1
        assert any(s.name == "join" or s.name.startswith("shard:")
                   for s in tracer.finished())


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork pools")
class TestParallelTraceCoverage:
    """A traced workers=2 join covers every execution stage per shard."""

    def test_spans_cover_partition_probe_index_verify(self, forest, tmp_path):
        tracer = Tracer()
        result = run_join(forest, "partsj", 2, 2, trace=tracer)
        assert result.pairs  # the workload actually joins something
        spans = tracer.finished()
        names = [span.name for span in spans]
        shard_names = {n for n in names if n.startswith("shard:")}
        assert len(shard_names) >= 2
        for required in ("join", "parallel.plan", "parallel.candidates",
                         "partsj.probe", "partsj.index", "verify.parallel"):
            assert required in names, required
        # Every shard span carries worker-side probe + index children
        # relayed through the sealed result envelope.
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if not span.name.startswith("shard:"):
                continue
            child_names = {
                s.name for s in spans if s.parent_id == span.span_id
            }
            assert {"partsj.probe", "partsj.index"} <= child_names
            assert span.attrs.get("pid") is not None
        # Exported to JSONL, the parent ids form a well-rooted tree.
        path = tmp_path / "trace.jsonl"
        write_jsonl(spans, path)
        rows = read_jsonl(path)
        roots, _children = span_roots(rows)  # raises on a cycle
        assert [row["name"] for row in roots] == ["join"]
        assert all(row["trace_id"] == tracer.trace_id for row in rows)

    def test_verify_chunk_spans_relayed(self, forest):
        tracer = Tracer()
        run_join(forest, "partsj", 2, 2, trace=tracer)
        names = [span.name for span in tracer.finished()]
        assert "verify.chunk" in names


class TestSerialTraceCoverage:
    def test_serial_partsj_loop_spans(self, forest):
        tracer = Tracer()
        run_join(forest, "partsj", 1, 1, trace=tracer)
        names = [span.name for span in tracer.finished()]
        for required in ("join", "partsj.loop", "partsj.probe",
                         "partsj.index", "partsj.verify"):
            assert required in names, required

    def test_search_span(self, forest):
        col = TreeCollection.from_trees(forest)
        tracer = Tracer()
        hits = col.search(forest[0], 1).run(trace=tracer)
        (span,) = [s for s in tracer.finished() if s.name == "search"]
        assert span.attrs["hits"] == len(hits)


class TestCacheSemantics:
    """Traced runs bypass the result-cache read but still store."""

    def test_untraced_hits_cache_traced_does_not(self, forest):
        col = TreeCollection.from_trees(forest)
        first = col.join(1).run()
        assert col.join(1).run() is first  # cache hit
        tracer = Tracer()
        traced = col.join(1).run(trace=tracer)
        assert traced is not first  # bypassed the read...
        assert triples(traced) == triples(first)  # ...bit-identically
        assert any(s.name == "join" for s in tracer.finished())
        # ...and the traced result landed in the cache for later reads.
        assert col.join(1).run() is traced


class TestNullTracerStaysEmpty:
    """The disabled path must leave no observable residue anywhere."""

    def test_untraced_runs_record_nothing(self, forest):
        run_join(forest, "partsj", 1, 1)
        assert NULL_TRACER.finished() == []
        assert NULL_TRACER.spans == []  # shared class-level list untouched

    def test_null_tracer_span_identity_on_hot_path(self):
        # One pre-allocated context manager: the per-call cost of a
        # disabled tracer is a method call returning a constant.
        assert NULL_TRACER.span("partsj.probe") is NULL_TRACER.span("x")


class TestGenericCounterMerge:
    """Satellite: executor merges JoinStats.extra counters generically."""

    @staticmethod
    def shard_result(shard_id, counters):
        return ShardResult(
            shard_id=shard_id, candidates=[], counters=counters,
            probe_time=0.0, index_time=0.0, band_time=0.0, wall_time=0.0,
            indexed_subgraphs=0, index_entries=0, owned_count=0,
            band_count=0, lo=0, hi=0,
        )

    def test_worker_only_counter_merges_without_executor_edit(self):
        merged = merge_counters([
            self.shard_result(0, {"probe_hits": 2, "new_counter": 5}),
            self.shard_result(1, {"probe_hits": 3}),
        ])
        assert merged == {"probe_hits": 5, "new_counter": 5}

    def test_non_integers_and_bools_skipped(self):
        merged = merge_counters([
            self.shard_result(0, {
                "probe_hits": 1, "ratio": 0.5, "flag": True, "name": "x",
            }),
        ])
        assert merged == {"probe_hits": 1}

    @pytest.mark.skipif(not HAVE_FORK, reason="fork propagates the patch")
    def test_live_worker_counter_reaches_join_stats(self, forest, monkeypatch):
        """A counter added worker-side lands summed in JoinStats.extra.

        Fork start method: pool children inherit the parent's patched
        module, so the instrumented ``execute_shard`` runs in-worker.
        """
        import repro.parallel.worker as worker_mod

        real = worker_mod.execute_shard

        def instrumented(trees, tau, config, plan):
            result = real(trees, tau, config, plan)
            result.counters["obs_test_marker"] = 1
            return result

        monkeypatch.setattr(worker_mod, "execute_shard", instrumented)
        result = partsj_join(forest, 1, PartSJConfig(workers=2))
        assert result.stats.extra.get("obs_test_marker", 0) >= 2


class TestMetricsAutoPublish:
    def test_every_executed_join_publishes(self, forest):
        mine = MetricsRegistry()
        old = set_registry(mine)
        try:
            run_join(forest, "str", 1, 1)
        finally:
            set_registry(old)
        snap = mine.snapshot()
        (key,) = snap["repro_join_runs_total"]
        assert dict(key)["tau"] == "1"
        assert snap["repro_join_runs_total"][key] == 1

    def test_cache_hits_do_not_republish(self, forest):
        mine = MetricsRegistry()
        old = set_registry(mine)
        try:
            col = TreeCollection.from_trees(forest)
            col.join(1).run()
            col.join(1).run()  # served from the session cache
        finally:
            set_registry(old)
        (key,) = mine.snapshot()["repro_join_runs_total"]
        assert mine.snapshot()["repro_join_runs_total"][key] == 1


class TestExplainObservability:
    def test_every_plan_kind_reports_observability(self, forest):
        col = TreeCollection.from_trees(forest)
        plans = {
            "join": col.join(1),
            "baseline": col.join(1, method="str"),
            "search": col.search(forest[0], 1),
            "stream": col.stream(1),
        }
        for kind, plan in plans.items():
            section = plan.explain().get("observability")
            assert section, kind
            assert "span_names" in section and section["span_names"], kind
            assert "metrics" in section, kind

    def test_parallel_join_lists_shard_spans(self, forest):
        col = TreeCollection.from_trees(forest)
        section = col.join(1, workers=2).explain()["observability"]
        assert any("shard" in name for name in section["span_names"])
