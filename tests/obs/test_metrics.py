"""Unit tests for :mod:`repro.obs.metrics`: registry and stats publishers."""

import pytest

from repro.baselines.common import JoinStats
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
    publish_join_stats,
    publish_stream_stats,
    set_registry,
)
from repro.stream.engine import StreamStats


class TestRegistry:
    def test_counter_only_goes_up(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6

    def test_histogram_buckets_and_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(2.55)
        assert hist.cumulative() == [1, 2, 3]

    def test_same_labels_return_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("c_total", method="partsj", tau=1)
        b = reg.counter("c_total", tau=1, method="partsj")  # order-insensitive
        assert a is b
        assert reg.counter("c_total", method="str", tau=1) is not a

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("name")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("name")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total", k="v").inc(2)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert snap["c_total"][(("k", "v"),)] == 2
        assert snap["h"][()] == {"sum": 0.5, "count": 1}

    def test_reset_clears_families(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        reg.reset()
        assert reg.families() == []

    def test_default_registry_swap_and_restore(self):
        mine = MetricsRegistry()
        old = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(old)
        assert get_registry() is old


def make_join_stats(**extra):
    stats = JoinStats(method="PRT", tau=2, tree_count=10)
    stats.candidates = 7
    stats.results = 3
    stats.ted_calls = 5
    stats.pairs_considered = 20
    stats.probe_time = 0.01
    stats.index_time = 0.02
    stats.candidate_time = 0.03
    stats.verify_time = 0.04
    stats.extra = {"probe_hits": 11, "prep_reused": False,
                   "prep_time": 0.5, **extra}
    return stats


class TestPublishJoinStats:
    def test_counters_and_labels(self):
        reg = MetricsRegistry()
        publish_join_stats(make_join_stats(), registry=reg)
        snap = reg.snapshot()
        key = (("method", "PRT"), ("tau", "2"))
        assert snap["repro_join_runs_total"][key] == 1
        assert snap["repro_join_trees_total"][key] == 10
        assert snap["repro_join_candidates_total"][key] == 7
        assert snap["repro_join_results_total"][key] == 3
        assert snap["repro_join_ted_calls_total"][key] == 5
        assert snap["repro_join_pairs_considered_total"][key] == 20

    def test_phase_histograms_observe_each_wall(self):
        reg = MetricsRegistry()
        publish_join_stats(make_join_stats(), registry=reg)
        phases = {
            dict(key)["phase"]
            for key in reg.snapshot()["repro_join_phase_seconds"]
        }
        assert phases == {"candidate", "verify", "probe", "index"}

    def test_integer_extra_counters_only(self):
        reg = MetricsRegistry()
        publish_join_stats(make_join_stats(), registry=reg)
        counters = {
            dict(key)["counter"]
            for key in reg.snapshot()["repro_join_counter_total"]
        }
        assert "probe_hits" in counters
        assert "prep_reused" not in counters  # bool
        assert "prep_time" not in counters  # float

    def test_publishes_accumulate_across_runs(self):
        reg = MetricsRegistry()
        publish_join_stats(make_join_stats(), registry=reg)
        publish_join_stats(make_join_stats(), registry=reg)
        key = (("method", "PRT"), ("tau", "2"))
        assert reg.snapshot()["repro_join_runs_total"][key] == 2
        assert reg.snapshot()["repro_join_trees_total"][key] == 20

    def test_stats_object_is_not_mutated(self):
        stats = make_join_stats()
        before = (stats.candidates, stats.results, dict(stats.extra))
        publish_join_stats(stats, registry=MetricsRegistry())
        assert (stats.candidates, stats.results, stats.extra) == before

    def test_defaults_to_process_registry(self):
        mine = MetricsRegistry()
        old = set_registry(mine)
        try:
            publish_join_stats(make_join_stats())
        finally:
            set_registry(old)
        assert "repro_join_runs_total" in mine.snapshot()


def make_stream_stats(**extra):
    stats = StreamStats()
    stats.trees = 40
    stats.results = 23
    stats.candidates = 43
    stats.reverse_candidates = 5
    stats.pending_verification = 2
    stats.index_entries = 120
    stats.quarantined_trees = 1
    stats.ingest_time = 0.2
    stats.verify_time = 0.1
    stats.extra = dict(extra)
    return stats


class TestPublishStreamStats:
    def test_gauges_reflect_latest_snapshot(self):
        reg = MetricsRegistry()
        publish_stream_stats(make_stream_stats(), registry=reg)
        snap = reg.snapshot()
        assert snap["repro_stream_trees"][()] == 40
        assert snap["repro_stream_results"][()] == 23
        assert snap["repro_stream_candidates"][()] == 48  # fwd + reverse
        assert snap["repro_stream_pending_verification"][()] == 2
        assert snap["repro_stream_index_entries"][()] == 120
        assert snap["repro_stream_snapshots_total"][()] == 1
        assert snap["repro_stream_quarantined_trees_total"][()] == 1

    def test_gauges_overwrite_counters_accumulate(self):
        reg = MetricsRegistry()
        publish_stream_stats(make_stream_stats(), registry=reg)
        publish_stream_stats(make_stream_stats(), registry=reg)
        snap = reg.snapshot()
        assert snap["repro_stream_trees"][()] == 40  # gauge: latest value
        assert snap["repro_stream_snapshots_total"][()] == 2

    def test_verify_pool_counters_from_flat_extra(self):
        reg = MetricsRegistry()
        publish_stream_stats(
            make_stream_stats(retries=3, verify_chunks=8, wal={"nested": 1}),
            registry=reg,
        )
        counters = {
            dict(key)["counter"]: value
            for key, value in
            reg.snapshot()["repro_stream_counter_total"].items()
        }
        assert counters == {"retries": 3, "verify_chunks": 8}

    def test_quarantined_pairs_accepts_list_or_int(self):
        reg = MetricsRegistry()
        publish_stream_stats(
            make_stream_stats(quarantined_pairs=[(1, 2), (3, 4)]),
            registry=reg,
        )
        publish_stream_stats(
            make_stream_stats(quarantined_pairs=3), registry=reg
        )
        snap = reg.snapshot()
        assert snap["repro_stream_quarantined_pairs_total"][()] == 5


class TestDefaultBuckets:
    def test_sorted_and_nonempty(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(DEFAULT_BUCKETS) >= 5
