"""Unit tests for :mod:`repro.obs.trace`: spans, tracers, the null tracer."""

import os

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    new_trace_id,
    phase_timer,
    span_dict,
)


class TestTracer:
    def test_span_records_interval_and_finishes(self):
        tracer = Tracer()
        with tracer.span("work", items=3) as sp:
            sp.set("done", True)
        spans = tracer.finished()
        assert [s.name for s in spans] == ["work"]
        assert spans[0].duration is not None and spans[0].duration >= 0
        assert spans[0].attrs == {"items": 3, "done": True}
        assert spans[0].trace_id == tracer.trace_id

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span_id == inner.span_id
            assert tracer.current_span_id == outer.span_id
        assert tracer.current_span_id is None
        by_name = {s.name: s for s in tracer.finished()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id

    def test_completion_order_children_before_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished()] == ["inner", "outer"]

    def test_span_ids_are_unique(self):
        tracer = Tracer()
        for _ in range(50):
            with tracer.span("s"):
                pass
        ids = [s.span_id for s in tracer.finished()]
        assert len(set(ids)) == len(ids)

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("no")
        (span,) = tracer.finished()
        assert span.attrs["error"] == "RuntimeError"
        assert span.duration is not None

    def test_record_synthetic_span_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            tracer.record("phase", 0.125, probe_hits=7)
        phase = tracer.finished()[0]
        assert phase.name == "phase"
        assert phase.duration == 0.125
        assert phase.parent_id == parent.span_id
        assert phase.attrs == {"probe_hits": 7}

    def test_graft_reroots_orphans_and_adopts_trace_id(self):
        tracer = Tracer()
        relayed = [
            span_dict("shard:0", 0.0, 0.5, "w-1"),
            span_dict("partsj.probe", 0.1, 0.2, "w-2", parent_id="w-1"),
        ]
        with tracer.span("stage") as stage:
            grafted = tracer.graft(relayed)
        assert grafted == 2
        by_name = {s.name: s for s in tracer.finished()}
        assert by_name["shard:0"].parent_id == stage.span_id
        assert by_name["partsj.probe"].parent_id == "w-1"
        assert all(s.trace_id == tracer.trace_id for s in tracer.finished())

    def test_explicit_trace_id_is_kept(self):
        assert Tracer(trace_id="cafe").trace_id == "cafe"

    def test_new_trace_ids_are_hex_and_distinct(self):
        ids = {new_trace_id() for _ in range(32)}
        assert len(ids) == 32
        for tid in ids:
            assert len(tid) == 16
            int(tid, 16)

    def test_to_dicts_round_trip_shape(self):
        tracer = Tracer()
        with tracer.span("a", k="v"):
            pass
        (row,) = tracer.to_dicts()
        assert set(row) == {
            "trace_id", "span_id", "parent_id", "name",
            "start", "duration", "attrs",
        }


class TestSpanDict:
    def test_pid_is_stamped(self):
        row = span_dict("s", 1.0, 2.0, "x-1")
        assert row["attrs"]["pid"] == os.getpid()
        assert row["trace_id"] is None

    def test_explicit_pid_wins(self):
        row = span_dict("s", 1.0, 2.0, "x-1", pid=42)
        assert row["attrs"]["pid"] == 42


class TestNullTracer:
    """Disabled tracing must cost nothing and record nothing."""

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True

    def test_span_returns_the_one_shared_instance(self):
        first = NULL_TRACER.span("a", big=1)
        second = NULL_TRACER.span("b")
        assert first is second  # no per-call allocation on the hot path

    def test_null_span_is_inert(self):
        with NULL_TRACER.span("a") as sp:
            sp.set("k", "v")
        assert NULL_TRACER.finished() == []
        assert NULL_TRACER.to_dicts() == []

    def test_record_and_graft_are_noops(self):
        NULL_TRACER.record("x", 1.0)
        assert NULL_TRACER.graft([span_dict("s", 0, 0, "i-1")]) == 0
        assert NULL_TRACER.finished() == []

    def test_exceptions_still_propagate(self):
        with pytest.raises(ValueError):
            with NullTracer().span("a"):
                raise ValueError("x")


class TestPhaseTimer:
    def test_accumulates_across_uses(self):
        class Stats:
            probe_time = 0.0

        stats = Stats()
        with phase_timer(stats, "probe_time"):
            pass
        first = stats.probe_time
        assert first >= 0
        with phase_timer(stats, "probe_time"):
            pass
        assert stats.probe_time >= first

    def test_accumulates_on_exception_and_reraises(self):
        class Stats:
            verify_time = 0.0

        stats = Stats()
        with pytest.raises(KeyError):
            with phase_timer(stats, "verify_time"):
                raise KeyError("boom")
        assert stats.verify_time > 0


class TestSpanStandalone:
    def test_span_without_tracer_still_times(self):
        span = Span("solo", None, "id-1", None)
        with span:
            pass
        assert span.duration is not None
