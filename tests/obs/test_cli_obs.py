"""CLI observability surface: join --trace, stats --metrics, trace."""

import json

import pytest

from repro.cli import main
from repro.obs.export import read_jsonl, span_roots


@pytest.fixture
def dataset_file(tmp_path):
    path = tmp_path / "forest.trees"
    assert main([
        "generate", "--dataset", "synthetic", "--count", "25",
        "--seed", "8", "--size", "12", "--out", str(path),
    ]) == 0
    return path


class TestJoinTrace:
    def test_writes_parseable_jsonl(self, dataset_file, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main([
            "join", str(dataset_file), "--tau", "1", "--trace", str(trace),
        ]) == 0
        assert f"trace spans to {trace}" in capsys.readouterr().err
        rows = read_jsonl(trace)
        assert rows
        roots, _ = span_roots(rows)  # parent ids form a tree (no cycle)
        assert [row["name"] for row in roots] == ["join"]

    def test_trace_does_not_change_results(self, dataset_file, tmp_path,
                                           capsys):
        assert main([
            "join", str(dataset_file), "--tau", "2", "--json",
        ]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main([
            "join", str(dataset_file), "--tau", "2", "--json",
            "--trace", str(tmp_path / "t.jsonl"),
        ]) == 0
        traced = json.loads(capsys.readouterr().out)
        assert traced["pairs"] == plain["pairs"]
        assert traced["stats"]["candidates"] == plain["stats"]["candidates"]

    def test_multi_tau_spans_share_one_trace(self, dataset_file, tmp_path,
                                             capsys):
        trace = tmp_path / "run.jsonl"
        assert main([
            "join", str(dataset_file), "--tau", "1", "--tau", "2",
            "--trace", str(trace),
        ]) == 0
        rows = read_jsonl(trace)
        joins = [row for row in rows if row["name"] == "join"]
        assert len(joins) == 2
        assert len({row["trace_id"] for row in rows}) == 1


class TestTraceSubcommand:
    def test_renders_span_tree(self, dataset_file, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main([
            "join", str(dataset_file), "--tau", "1", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace ")
        assert "join" in out and "ms" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestStatsMetrics:
    def test_dataset_metrics_exposition(self, dataset_file, capsys):
        assert main(["stats", str(dataset_file), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_dataset_trees gauge" in out
        assert 'repro_dataset_trees{dataset="' in out
        assert out.endswith("\n")
        for line in out.splitlines():
            assert line.startswith("#") or " " in line

    def test_stream_metrics_exposition(self, capsys, monkeypatch):
        import io
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("{a{b}}\n{a{b}{c}}\n{a{c}}\n")
        )
        assert main(["stats", "--stream", "--tau", "1", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_stream_trees gauge" in out
        assert "repro_stream_trees 3" in out
        assert "repro_stream_snapshots_total 1" in out
