"""Tests for the realistic dataset simulators (repro.datasets.realistic).

The tolerances encode the substitution contract from DESIGN.md: each
simulator must land near the paper's published shape statistics.
"""

import pytest

from repro.datasets.realistic import (
    DATASET_GENERATORS,
    sentiment_like,
    swissprot_like,
    treebank_like,
)
from repro.errors import InvalidParameterError
from repro.tree.stats import collection_stats


@pytest.fixture(scope="module")
def swissprot():
    return swissprot_like(300, seed=1)


@pytest.fixture(scope="module")
def treebank():
    return treebank_like(300, seed=1)


@pytest.fixture(scope="module")
def sentiment():
    return sentiment_like(300, seed=1)


class TestSwissprotShape:
    """Paper: avg size 62.37, 84 labels, avg depth 2.65, max depth 4."""

    def test_average_size(self, swissprot):
        stats = collection_stats(swissprot)
        assert 50 <= stats.average_size <= 75

    def test_flat_profile(self, swissprot):
        stats = collection_stats(swissprot)
        assert 1.8 <= stats.average_depth <= 3.2
        # Decay inserts can deepen a tree slightly beyond the schema's 4.
        assert stats.max_depth <= 7

    def test_label_alphabet(self, swissprot):
        stats = collection_stats(swissprot)
        assert 60 <= stats.distinct_labels <= 84


class TestTreebankShape:
    """Paper: avg size 45.12, 218 labels, avg depth 6.93, max depth 35."""

    def test_average_size(self, treebank):
        stats = collection_stats(treebank)
        assert 35 <= stats.average_size <= 55

    def test_deep_profile(self, treebank):
        stats = collection_stats(treebank)
        assert 4.5 <= stats.average_depth <= 9.5
        assert stats.max_depth <= 40

    def test_label_alphabet(self, treebank):
        stats = collection_stats(treebank)
        assert 150 <= stats.distinct_labels <= 218


class TestSentimentShape:
    """Paper: avg size 37.31, 5 labels, avg depth 10.84, max depth 30."""

    def test_average_size(self, sentiment):
        stats = collection_stats(sentiment)
        assert 28 <= stats.average_size <= 46

    def test_thin_deep_profile(self, sentiment):
        stats = collection_stats(sentiment)
        assert 6.0 <= stats.average_depth <= 14.0
        assert stats.max_depth <= 34

    def test_five_labels(self, sentiment):
        stats = collection_stats(sentiment)
        assert stats.distinct_labels == 5

    def test_binary_parses(self, sentiment):
        from repro.tree.stats import tree_stats

        # Fanout 2 in the bases; decay inserts may occasionally create a
        # third child, but the bulk of nodes must stay binary.
        ternary = sum(1 for t in sentiment if tree_stats(t).max_fanout > 2)
        assert ternary <= len(sentiment) * 0.2


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", sorted(DATASET_GENERATORS))
    def test_deterministic(self, name):
        gen = DATASET_GENERATORS[name]
        a = [t.to_bracket() for t in gen(25, seed=3)]
        b = [t.to_bracket() for t in gen(25, seed=3)]
        assert a == b

    @pytest.mark.parametrize("name", sorted(DATASET_GENERATORS))
    def test_count_validation(self, name):
        with pytest.raises(InvalidParameterError):
            DATASET_GENERATORS[name](0)

    @pytest.mark.parametrize("name", sorted(DATASET_GENERATORS))
    def test_near_duplicates_exist(self, name):
        # The tier distribution guarantees some exact duplicates per ~50
        # trees (18% of variants copy their base verbatim).
        trees = DATASET_GENERATORS[name](50, seed=6)
        texts = [t.to_bracket() for t in trees]
        assert len(set(texts)) < len(texts)
