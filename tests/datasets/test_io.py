"""Tests for dataset file IO (repro.datasets.io)."""

import pytest

from repro.datasets.io import iter_trees, load_trees, save_trees
from repro.datasets.synthetic import SyntheticParams, generate_forest
from repro.errors import TreeFormatError
from repro.tree.node import Tree


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        forest = generate_forest(15, SyntheticParams(avg_size=12), seed=1)
        path = tmp_path / "forest.trees"
        assert save_trees(forest, path) == 15
        loaded = load_trees(path)
        assert loaded == forest

    def test_gzip_round_trip(self, tmp_path):
        forest = generate_forest(10, SyntheticParams(avg_size=10), seed=2)
        path = tmp_path / "forest.trees.gz"
        save_trees(forest, path)
        assert load_trees(path) == forest
        # Compressed output must actually be gzip.
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_comment_header_written_and_skipped(self, tmp_path):
        path = tmp_path / "annotated.trees"
        save_trees([Tree.from_bracket("{a}")], path, comment="hello\nworld")
        text = path.read_text()
        assert text.startswith("# hello\n# world\n")
        assert load_trees(path) == [Tree.from_bracket("{a}")]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "x.trees"
        save_trees([Tree.from_bracket("{a}")], path)
        assert path.exists()


class TestStreaming:
    def test_iter_is_lazy(self, tmp_path):
        path = tmp_path / "big.trees"
        save_trees([Tree.from_bracket("{a}")] * 100, path)
        iterator = iter_trees(path)
        assert next(iterator).root.label == "a"

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.trees"
        path.write_text("{a}\n\n\n{b}\n")
        assert [t.root.label for t in load_trees(path)] == ["a", "b"]


class TestAtomicity:
    """save_trees is all-or-nothing (temp + fsync + rename)."""

    def _crashing_forest(self, good, boom_after):
        yield from good[:boom_after]
        raise RuntimeError("simulated crash mid-write")

    def test_failed_save_leaves_the_old_file_intact(self, tmp_path):
        old = [Tree.from_bracket("{a{b}}"), Tree.from_bracket("{c}")]
        new = generate_forest(8, SyntheticParams(avg_size=8), seed=3)
        path = tmp_path / "forest.trees"
        save_trees(old, path)
        with pytest.raises(RuntimeError, match="simulated crash"):
            save_trees(self._crashing_forest(new, 5), path)
        assert load_trees(path) == old
        assert list(tmp_path.iterdir()) == [path]  # no temp debris

    def test_failed_first_save_leaves_nothing(self, tmp_path):
        path = tmp_path / "forest.trees"
        with pytest.raises(RuntimeError):
            save_trees(self._crashing_forest([Tree.from_bracket("{a}")], 1), path)
        assert list(tmp_path.iterdir()) == []

    def test_gzip_is_chosen_by_the_final_suffix(self, tmp_path):
        # The temp file's name carries no .gz; compression must key off
        # the destination path, not the file actually being written.
        forest = [Tree.from_bracket("{a{b}{c}}")]
        path = tmp_path / "forest.trees.gz"
        save_trees(forest, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert load_trees(path) == forest


class TestErrors:
    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.trees"
        path.write_text("{a}\n{broken\n")
        with pytest.raises(TreeFormatError, match="bad.trees:2"):
            load_trees(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trees(tmp_path / "nope.trees")
