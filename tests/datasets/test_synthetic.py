"""Tests for the synthetic tree generator (repro.datasets.synthetic)."""

import itertools

import pytest

from repro.datasets.synthetic import (
    SyntheticParams,
    TreeGenerator,
    decay,
    generate_forest,
)
from repro.errors import InvalidParameterError
from repro.ted.api import ted_within
from repro.tree.stats import collection_stats, tree_stats


class TestParams:
    def test_defaults_match_table1(self):
        params = SyntheticParams()
        assert (params.max_fanout, params.max_depth) == (3, 5)
        assert (params.num_labels, params.avg_size) == (20, 80)
        assert params.decay == pytest.approx(0.05)

    @pytest.mark.parametrize("kwargs", [
        {"max_fanout": 0},
        {"max_depth": -1},
        {"num_labels": 0},
        {"avg_size": 0},
        {"decay": 1.5},
        {"decay": -0.1},
        {"cluster_size": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            SyntheticParams(**kwargs).validate()

    def test_max_possible_size(self):
        # f=2, d=2: 1 + 2 + 4
        assert SyntheticParams(max_fanout=2, max_depth=2).max_possible_size() == 7

    def test_label_universe(self):
        assert len(SyntheticParams(num_labels=7).labels) == 7


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = generate_forest(20, seed=42)
        b = generate_forest(20, seed=42)
        c = generate_forest(20, seed=43)
        assert [t.to_bracket() for t in a] == [t.to_bracket() for t in b]
        assert [t.to_bracket() for t in a] != [t.to_bracket() for t in c]

    def test_count_honoured(self):
        assert len(generate_forest(37, seed=1)) == 37

    def test_shape_caps_respected_before_decay(self):
        params = SyntheticParams(max_fanout=2, max_depth=4, decay=0.0)
        for tree in generate_forest(30, params, seed=5):
            stats = tree_stats(tree)
            assert stats.max_fanout <= 2
            assert stats.depth <= 4

    def test_average_size_near_target(self):
        params = SyntheticParams(avg_size=60, decay=0.0)
        stats = collection_stats(generate_forest(80, params, seed=2))
        assert 48 <= stats.average_size <= 72

    def test_labels_within_alphabet(self):
        params = SyntheticParams(num_labels=5)
        forest = generate_forest(20, params, seed=3)
        allowed = set(params.labels)
        for tree in forest:
            assert set(tree.labels()) <= allowed

    def test_clusters_contain_similar_pairs(self):
        # With decay 0.05 on ~80-node trees, cluster members stay within a
        # small TED of their base; at least some pairs must be <= 8 apart.
        forest = generate_forest(12, SyntheticParams(cluster_size=4), seed=7)
        close_pairs = 0
        for a, b in itertools.combinations(range(4), 2):  # first cluster
            if ted_within(forest[a], forest[b], 8) is not None:
                close_pairs += 1
        assert close_pairs >= 1

    def test_stream_is_endless(self):
        generator = TreeGenerator(SyntheticParams(avg_size=10), seed=1)
        stream = generator.stream()
        first = [next(stream) for _ in range(7)]
        assert len(first) == 7


class TestDecay:
    def test_decay_zero_is_identity(self):
        generator = TreeGenerator(SyntheticParams(decay=0.0), seed=1)
        tree = generator.generate_tree()
        assert generator.decay_tree(tree) == tree

    def test_decay_standalone_function(self):
        base = generate_forest(1, SyntheticParams(decay=0.0), seed=9)[0]
        mutated = decay(base, dz=0.5, num_labels=20, seed=4)
        assert mutated.size >= 1  # valid tree out

    def test_decay_bounded_ted(self):
        params = SyntheticParams(avg_size=20, decay=0.0)
        generator = TreeGenerator(params, seed=11)
        base = generator.generate_tree()
        # Force a decay pass with a known mutation budget by using dz=1.0:
        # every node flips once, so TED <= size of the base tree.
        mutated = decay(base, dz=1.0, num_labels=20, seed=5)
        assert ted_within(base, mutated, base.size) is not None
