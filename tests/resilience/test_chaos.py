"""Chaos tests: the parallel executor under injected faults.

The acceptance bar of the resilience layer: with deterministic crashes,
hangs, corrupt envelopes, and poison exceptions injected at every shard
and verify-chunk index, ``similarity_join(workers=N)`` still returns
results **bit-identical** to the serial engine, with every swallowed
failure accounted for in ``JoinStats.extra``.  Real worker pools are
started (and killed), so the workloads are kept small and the wildcard
fault specs cover every task index within a single join.
"""

import random
import time

import pytest

from repro.core.join import PartSJConfig, partsj_join
from repro.errors import TaskTimeoutError, WorkerFailureError
from repro.resilience import FAULT_SPEC_ENV, FaultInjector, RetryPolicy
from repro.session import TreeCollection
from tests.conftest import make_cluster_forest

WORKER_COUNTS = (2, 4)
TAUS = (1, 2)

# Fast-failure policy for chaos runs: immediate retries, and a timeout
# large enough that only *injected* hangs ever trip it.
CHAOS_POLICY = RetryPolicy(
    max_attempts=3, task_timeout=5.0, backoff_base=0.0, jitter=0.0
)


def triples(result):
    return [(p.i, p.j, p.distance) for p in result.pairs]


def make_workload(seed=11):
    rng = random.Random(seed)
    return make_cluster_forest(
        rng, clusters=3, cluster_size=3, base_size=10, max_edits=2
    )


def faulted_join(trees, tau, workers, spec, policy=CHAOS_POLICY):
    cfg = PartSJConfig(
        workers=workers,
        retry=policy,
        fault_injector=FaultInjector.from_spec(spec),
    )
    return partsj_join(trees, tau, cfg)


@pytest.fixture(scope="module")
def workload():
    trees = make_workload()
    serial = {tau: triples(partsj_join(trees, tau)) for tau in TAUS}
    return trees, serial


class TestCrashEveryTask:
    """A worker crash at every shard / chunk index; retries succeed."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("tau", TAUS)
    def test_crash_every_shard_first_attempt(self, workload, workers, tau):
        trees, serial = workload
        result = faulted_join(trees, tau, workers, "shard:*@1=crash")
        assert triples(result) == serial[tau]
        extra = result.stats.extra
        assert extra["worker_failures"] >= 1
        assert extra["retries"] >= 1
        assert extra["pool_respawns"] >= 1
        assert extra["degraded_serial_tasks"] == 0
        assert any(
            event["task"].startswith("shard:") and event["reason"] == "crash"
            for event in extra["fault_events"]
        )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("tau", TAUS)
    def test_crash_every_verify_chunk_first_attempt(self, workload, workers, tau):
        trees, serial = workload
        result = faulted_join(trees, tau, workers, "verify:*@1=crash")
        assert triples(result) == serial[tau]
        extra = result.stats.extra
        assert extra["worker_failures"] >= 1
        assert extra["retries"] >= 1
        assert extra["degraded_serial_tasks"] == 0
        assert any(
            event["task"].startswith("verify:")
            for event in extra["fault_events"]
        )


class TestHangAndCorrupt:
    def test_hang_detected_by_task_timeout(self, workload):
        trees, serial = workload
        policy = RetryPolicy(
            max_attempts=2, task_timeout=0.5, backoff_base=0.0, jitter=0.0
        )
        start = time.perf_counter()
        result = faulted_join(trees, 2, 2, "shard:1@1=hang", policy)
        wall = time.perf_counter() - start
        assert triples(result) == serial[2]
        assert result.stats.extra["timeouts"] >= 1
        # Detection is timeout-bounded, not hang-bounded (the injected
        # default hang is an hour).
        assert wall < 30.0

    def test_corrupt_envelope_detected_and_retried(self, workload):
        trees, serial = workload
        result = faulted_join(trees, 1, 2, "verify:0@1=corrupt")
        assert triples(result) == serial[1]
        extra = result.stats.extra
        assert extra["worker_failures"] >= 1
        assert any(
            event["reason"] == "corrupt" for event in extra["fault_events"]
        )

    def test_poison_task_is_retried(self, workload):
        trees, serial = workload
        result = faulted_join(trees, 1, 2, "shard:0@1=poison")
        assert triples(result) == serial[1]
        assert result.stats.extra["worker_failures"] >= 1


class TestGracefulDegradation:
    def test_persistent_crash_degrades_serially(self, workload):
        trees, serial = workload
        # No @attempt selector: the fault defeats every retry, forcing
        # the in-process serial fallback for that shard.
        result = faulted_join(trees, 2, 2, "shard:0=crash")
        assert triples(result) == serial[2]
        extra = result.stats.extra
        assert extra["degraded_serial_tasks"] >= 1
        assert extra["retries"] >= 1

    def test_persistent_verify_crash_degrades_serially(self, workload):
        trees, serial = workload
        result = faulted_join(trees, 2, 2, "verify:*=crash")
        assert triples(result) == serial[2]
        assert result.stats.extra["degraded_serial_tasks"] >= 1

    def test_degradation_disabled_crash_escapes(self, workload):
        trees, _ = workload
        policy = RetryPolicy(
            max_attempts=2, task_timeout=5.0, backoff_base=0.0,
            jitter=0.0, degradation=False,
        )
        with pytest.raises(WorkerFailureError, match="degradation is disabled"):
            faulted_join(trees, 2, 2, "shard:0=crash", policy)

    def test_degradation_disabled_hang_escapes_as_timeout(self, workload):
        trees, _ = workload
        policy = RetryPolicy(
            max_attempts=1, task_timeout=0.4, backoff_base=0.0,
            jitter=0.0, degradation=False,
        )
        with pytest.raises(TaskTimeoutError):
            faulted_join(trees, 2, 2, "shard:*=hang", policy)


class TestEnvHookAndAccounting:
    def test_fault_spec_env_hook(self, workload, monkeypatch):
        trees, serial = workload
        monkeypatch.setenv(FAULT_SPEC_ENV, "shard:0@1=crash")
        result = partsj_join(
            trees, 1, PartSJConfig(workers=2, retry=CHAOS_POLICY)
        )
        assert triples(result) == serial[1]
        assert result.stats.extra["worker_failures"] >= 1

    def test_clean_run_reports_zero_failures(self, workload):
        trees, serial = workload
        result = partsj_join(trees, 1, PartSJConfig(workers=2))
        assert triples(result) == serial[1]
        extra = result.stats.extra
        assert extra["retries"] == 0
        assert extra["worker_failures"] == 0
        assert extra["timeouts"] == 0
        assert extra["degraded_serial_tasks"] == 0
        assert extra["pool_respawns"] == 0
        assert extra["fault_events"] == []

    def test_explain_surfaces_active_policy(self, workload):
        trees, _ = workload
        col = TreeCollection(trees)
        plan = col.join(
            2,
            config=PartSJConfig(
                workers=2,
                retry=RetryPolicy(max_attempts=5, task_timeout=1.5),
                fault_injector=FaultInjector.from_spec("shard:0=crash"),
            ),
        ).explain()
        resilience = plan["resilience"]
        assert resilience["max_attempts"] == 5
        assert resilience["task_timeout"] == 1.5
        assert resilience["fault_injection"] is True
        clean = TreeCollection(trees).join(2, workers=2).explain()
        assert clean["resilience"]["fault_injection"] is False
        assert "resilience" not in TreeCollection(trees).join(2).explain()


class TestOverheadBound:
    def test_faulted_join_within_3x_of_clean_parallel(self, workload):
        """Crash-every-first-attempt must cost at most 3x the clean
        parallel run (plus fixed pool-startup slack): recovery is one
        pool respawn and one retry round, not a serial re-run of the
        whole join."""
        trees, serial = workload
        clean_cfg = PartSJConfig(workers=2, retry=CHAOS_POLICY)
        partsj_join(trees, 2, clean_cfg)  # warm the OS page cache / imports
        start = time.perf_counter()
        clean = partsj_join(trees, 2, clean_cfg)
        clean_wall = time.perf_counter() - start
        start = time.perf_counter()
        faulted = faulted_join(trees, 2, 2, "shard:*@1=crash")
        faulted_wall = time.perf_counter() - start
        assert triples(faulted) == triples(clean) == serial[2]
        assert faulted_wall <= 3.0 * clean_wall + 2.0, (
            f"faulted {faulted_wall:.3f}s vs clean {clean_wall:.3f}s"
        )
