"""Unit tests for the resilience primitives: RetryPolicy, FaultInjector,
and the CRC'd result envelopes (no worker pools started here)."""

import pickle

import pytest

from repro.core.join import PartSJConfig
from repro.errors import InvalidParameterError, WorkerFailureError
from repro.resilience import (
    FAULT_SPEC_ENV,
    FaultInjector,
    FaultRule,
    InjectedFaultError,
    RetryPolicy,
    seal,
    unseal,
)
from repro.resilience.faults import corrupt_envelope


class TestRetryPolicy:
    def test_defaults_validate(self):
        policy = RetryPolicy().validated()
        assert policy.max_attempts == 3
        assert policy.task_timeout is None
        assert policy.degradation is True

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"max_attempts": -1},
        {"max_attempts": 1.5},
        {"task_timeout": 0},
        {"task_timeout": -2.0},
        {"backoff_base": -0.1},
        {"backoff_factor": 0.5},
        {"jitter": -0.01},
    ])
    def test_validated_rejects_bad_fields(self, kwargs):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(**kwargs).validated()

    def test_delay_is_deterministic_and_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, jitter=0.5)
        d1 = policy.delay("shard:0", 1)
        d2 = policy.delay("shard:0", 2)
        # Same (task, attempt) always sleeps the same delay.
        assert d1 == policy.delay("shard:0", 1)
        # Jitter stays within [base, base * (1 + jitter)].
        assert 0.1 <= d1 <= 0.1 * 1.5
        assert 0.2 <= d2 <= 0.2 * 1.5
        # Different tasks draw different jitter from the same seed.
        assert policy.delay("shard:1", 1) != d1

    def test_delay_seed_changes_jitter(self):
        a = RetryPolicy(jitter=1.0, seed=0).delay("shard:0", 1)
        b = RetryPolicy(jitter=1.0, seed=1).delay("shard:0", 1)
        assert a != b

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_factor=3.0, jitter=0.0)
        assert policy.delay("x", 1) == pytest.approx(0.05)
        assert policy.delay("x", 3) == pytest.approx(0.45)

    def test_hashable_and_picklable(self):
        # Rides on PartSJConfig (session cache keys) and pool initargs.
        policy = RetryPolicy(max_attempts=2, task_timeout=1.0)
        assert hash(policy) == hash(RetryPolicy(max_attempts=2, task_timeout=1.0))
        assert pickle.loads(pickle.dumps(policy)) == policy
        cfg = PartSJConfig(retry=policy)
        assert hash(cfg.resolved()) is not None

    def test_describe_is_json_ready(self):
        desc = RetryPolicy(task_timeout=2.5, degradation=False).describe()
        assert desc["task_timeout"] == 2.5
        assert desc["degradation"] is False
        assert set(desc) == {
            "max_attempts", "task_timeout", "backoff_base",
            "backoff_factor", "jitter", "degradation",
        }


class TestFaultInjectorSpec:
    def test_from_spec_full_grammar(self):
        injector = FaultInjector.from_spec(
            "shard:0@1=crash, verify:*=hang:30 ,stream:2@2=corrupt,"
            "pair:1:3=poison"
        )
        assert injector.rules == (
            FaultRule("shard:0", "crash", 1, 0.0),
            FaultRule("verify:*", "hang", None, 30.0),
            FaultRule("stream:2", "corrupt", 2, 0.0),
            FaultRule("pair:1:3", "poison", None, 0.0),
        )

    @pytest.mark.parametrize("spec", [
        "shard:0",                 # missing =kind
        "shard:0=explode",         # unknown kind
        "shard:0@0=crash",         # attempts are 1-based
        "shard:0@x=crash",         # non-integer attempt
        "shard:0=hang:soon",       # non-numeric arg
    ])
    def test_from_spec_rejects_malformed(self, spec):
        with pytest.raises(InvalidParameterError):
            FaultInjector.from_spec(spec)

    def test_from_env(self):
        assert FaultInjector.from_env({}) is None
        assert FaultInjector.from_env({FAULT_SPEC_ENV: "  "}) is None
        injector = FaultInjector.from_env({FAULT_SPEC_ENV: "shard:1=crash"})
        assert injector.rules == (FaultRule("shard:1", "crash"),)

    def test_rule_matching(self):
        injector = FaultInjector.from_spec("shard:*@1=crash,verify:2=poison")
        assert injector.rule_for("shard:7", 1).kind == "crash"
        assert injector.rule_for("shard:7", 2) is None   # @1 only
        assert injector.rule_for("verify:2", 5).kind == "poison"
        assert injector.rule_for("stream:0", 1) is None

    def test_fire_poison_raises(self):
        injector = FaultInjector.from_spec("verify:0=poison")
        with pytest.raises(InjectedFaultError):
            injector.fire("verify:0", 1)
        injector.fire("verify:1", 1)  # non-matching: no-op

    def test_corrupts(self):
        injector = FaultInjector.from_spec("shard:0@2=corrupt")
        assert not injector.corrupts("shard:0", 1)
        assert injector.corrupts("shard:0", 2)
        # corrupt never side-effects in fire()
        injector.fire("shard:0", 2)

    def test_injector_is_hashable_and_picklable(self):
        injector = FaultInjector.from_spec("shard:0=crash")
        assert pickle.loads(pickle.dumps(injector)) == injector
        assert hash(PartSJConfig(fault_injector=injector)) is not None


class TestEnvelopes:
    def test_seal_unseal_roundtrip(self):
        payload = {"pairs": [(1, 2, 0)], "n": 3}
        assert unseal(seal(payload), "t") == payload

    def test_corrupt_envelope_detected(self):
        envelope = corrupt_envelope(seal([1, 2, 3]))
        with pytest.raises(WorkerFailureError, match="corrupt"):
            unseal(envelope, "shard:4")

    def test_garbage_envelope_detected(self):
        with pytest.raises(WorkerFailureError):
            unseal("not an envelope", "t")
        with pytest.raises(WorkerFailureError):
            unseal((1, 2, 3), "t")
