"""Chaos tests: the streaming tier under injected faults.

Flush-point equivalence is the invariant: whatever is injected into the
background verify pool — crashes, hangs, corrupt envelopes — the set of
verified pairs after ``flush()`` equals the serial streaming run bit for
bit.  The one sanctioned divergence is *poison quarantine*: a candidate
pair whose verification itself raises is counted and skipped instead of
wedging the stream.
"""

import random

import pytest

from repro.core.join import PartSJConfig
from repro.resilience import FaultInjector, RetryPolicy
from repro.stream.engine import StreamingJoin
from tests.conftest import make_cluster_forest

# Streaming chaos needs a finite deadline: a crashed worker's result
# never arrives, and only the deadline turns that into degradation.
STREAM_POLICY = RetryPolicy(task_timeout=0.5, backoff_base=0.0, jitter=0.0)


def make_workload(seed=21):
    rng = random.Random(seed)
    return make_cluster_forest(
        rng, clusters=3, cluster_size=3, base_size=10, max_edits=2
    )


def stream_triples(trees, tau, config=None, workers=1):
    with StreamingJoin(tau, config=config, workers=workers) as join:
        collected = list(join.add_many(trees))
        collected.extend(join.flush())
        stats = join.stats()
    return sorted((p.i, p.j, p.distance) for p in collected), stats


@pytest.fixture(scope="module")
def workload():
    trees = make_workload()
    serial, _ = stream_triples(trees, 2)
    return trees, serial


def chaos_config(spec):
    return PartSJConfig(
        retry=STREAM_POLICY, fault_injector=FaultInjector.from_spec(spec)
    )


class TestStreamVerifyChaos:
    def test_crash_every_submission_degrades_losslessly(self, workload):
        trees, serial = workload
        found, stats = stream_triples(
            trees, 2, chaos_config("stream:*=crash"), workers=2
        )
        assert found == serial
        assert stats.extra["verify_failures"] >= 1
        assert stats.extra["degraded_serial_tasks"] >= 1
        assert stats.extra["quarantined_pairs"] == 0
        assert stats.quarantined_trees == 0

    def test_crash_detected_without_task_timeout(self, workload):
        """No deadline configured at all: crash detection must come from
        the worker-pid health check, not block drain() forever (the
        REPRO_FAULT_SPEC env hook hits exactly this configuration)."""
        trees, serial = workload
        cfg = PartSJConfig(
            fault_injector=FaultInjector.from_spec("stream:*=crash")
        )
        found, stats = stream_triples(trees, 2, cfg, workers=2)
        assert found == serial
        assert stats.extra["verify_failures"] >= 1
        assert stats.extra["degraded_serial_tasks"] >= 1

    def test_hang_detected_and_degraded(self, workload):
        trees, serial = workload
        found, stats = stream_triples(
            trees, 2, chaos_config("stream:0=hang"), workers=2
        )
        assert found == serial
        assert stats.extra["verify_failures"] >= 1

    def test_corrupt_envelope_degraded(self, workload):
        trees, serial = workload
        found, stats = stream_triples(
            trees, 2, chaos_config("stream:*=corrupt"), workers=2
        )
        assert found == serial
        assert stats.extra["verify_failures"] >= 1

    def test_poison_pairs_are_quarantined_individually(self, workload):
        trees, serial = workload
        # Crash every submission to force the in-process fallback, then
        # poison every pair inside it: all candidates quarantine, none
        # wedge the stream.
        found, stats = stream_triples(
            trees, 2, chaos_config("stream:*=crash,pair:*=poison"), workers=2
        )
        assert stats.extra["quarantined_pairs"] >= 1
        # Quarantined candidates are dropped, never fabricated: whatever
        # did survive is a subset of the serial result.
        assert set(found) <= set(serial)
        assert len(found) < len(serial)

    def test_single_poison_pair_quarantines_only_itself(self, workload):
        trees, serial = workload
        i, j, _ = serial[0]
        found, stats = stream_triples(
            trees, 2, chaos_config(f"stream:*=crash,pair:{i}:{j}=poison"),
            workers=2,
        )
        assert stats.extra["quarantined_pairs"] == 1
        assert set(found) == set(serial) - {serial[0]}

    def test_clean_parallel_stream_reports_zero_failures(self, workload):
        trees, serial = workload
        found, stats = stream_triples(trees, 2, workers=2)
        assert found == serial
        assert stats.extra["verify_failures"] == 0
        assert stats.extra["quarantined_pairs"] == 0
