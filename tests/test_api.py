"""Tests for the top-level join API (repro.api)."""

import pytest

from repro.api import JOIN_METHODS, similarity_join
from repro.core.join import PartSJConfig
from repro.errors import InvalidParameterError
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest


class TestDispatch:
    def test_default_method_is_partsj(self, sample_forest):
        result = similarity_join(sample_forest, 1)
        assert result.stats.method == "PRT"

    @pytest.mark.parametrize("method,label", [
        ("partsj", "PRT"),
        ("prt", "PRT"),
        ("str", "STR"),
        ("set", "SET"),
        ("histogram", "HST"),
        ("nested_loop", "NL"),
        ("rel", "NL"),
    ])
    def test_method_names_and_aliases(self, sample_forest, method, label):
        assert similarity_join(sample_forest, 1, method=method).stats.method == label

    def test_method_name_case_insensitive(self, sample_forest):
        assert similarity_join(sample_forest, 1, method="PaRtSj").stats.method == "PRT"

    def test_unknown_method(self, sample_forest):
        with pytest.raises(InvalidParameterError, match="unknown join method"):
            similarity_join(sample_forest, 1, method="magic")

    def test_all_registered_methods_agree(self, rng):
        trees = make_cluster_forest(
            rng, clusters=3, cluster_size=3, base_size=9, max_edits=2
        )
        results = {
            name: similarity_join(trees, 2, method=name).pair_set()
            for name in JOIN_METHODS
        }
        reference = results["nested_loop"]
        assert all(r == reference for r in results.values())


class TestOptions:
    def test_partsj_config_object(self, sample_forest):
        result = similarity_join(
            sample_forest, 1, config=PartSJConfig(semantics="paper")
        )
        assert result.stats.method == "PRT"

    def test_partsj_kwargs_build_config(self, sample_forest):
        result = similarity_join(
            sample_forest, 1, semantics="paper", postorder_filter="off"
        )
        assert result.stats.method == "PRT"

    def test_config_and_kwargs_conflict(self, sample_forest):
        with pytest.raises(InvalidParameterError, match="not both"):
            similarity_join(
                sample_forest, 1,
                config=PartSJConfig(), semantics="paper",
            )

    def test_str_banded_option(self, sample_forest):
        result = similarity_join(sample_forest, 1, method="str", banded=False)
        assert result.stats.extra["banded"] is False

    def test_nested_loop_bounds_option(self, sample_forest):
        result = similarity_join(
            sample_forest, 1, method="nested_loop", use_bounds=False
        )
        assert result.stats.method == "NL"

    def test_single_tree_and_empty(self):
        assert similarity_join([], 1).pairs == []
        assert similarity_join([Tree.from_bracket("{a}")], 1).pairs == []
