"""Tests for the benchmark harness (repro.bench.harness)."""

import pytest

from repro.bench.harness import METHOD_LABELS, CellResult, run_cell, run_grid
from repro.errors import InvalidParameterError
from tests.conftest import make_cluster_forest


@pytest.fixture
def forest(rng):
    return make_cluster_forest(
        rng, clusters=2, cluster_size=3, base_size=8, max_edits=2
    )


class TestRunCell:
    @pytest.mark.parametrize("method", sorted(METHOD_LABELS))
    def test_every_series_runs(self, forest, method):
        cell = run_cell("exp", "tiny", forest, 1, method, "tau", 1)
        assert cell.method == method
        assert cell.results >= 0
        assert cell.candidates >= cell.results
        assert cell.wall_time > 0

    def test_unknown_method(self, forest):
        with pytest.raises(InvalidParameterError):
            run_cell("exp", "tiny", forest, 1, "XYZ", "tau", 1)

    def test_all_series_agree_on_results(self, forest):
        counts = {
            method: run_cell("exp", "tiny", forest, 2, method, "tau", 2).results
            for method in ("STR", "SET", "PRT", "REL", "HST")
        }
        assert len(set(counts.values())) == 1, counts

    def test_as_dict_round_trip(self, forest):
        cell = run_cell("exp", "tiny", forest, 1, "REL", "tau", 1)
        payload = cell.as_dict()
        assert payload["experiment"] == "exp"
        # Each field is rounded to 4 decimals independently, so allow the
        # worst-case combined rounding error.
        assert payload["total_time"] == pytest.approx(
            payload["candidate_time"] + payload["verify_time"], abs=2e-4
        )

    def test_str_banded_flag_recorded(self, forest):
        banded = run_cell("e", "d", forest, 1, "STR", "tau", 1, str_banded=True)
        full = run_cell("e", "d", forest, 1, "STR", "tau", 1, str_banded=False)
        assert banded.extra["banded"] is True
        assert full.extra["banded"] is False
        assert banded.results == full.results


class TestRunGrid:
    def test_grid_covers_workloads_and_methods(self, forest):
        workloads = [(1, forest, 1), (2, forest, 2)]
        seen = []
        cells = run_grid(
            "exp", "tiny", workloads, ("PRT", "REL"), "tau",
            progress=seen.append,
        )
        assert len(cells) == 4
        assert len(seen) == 4
        assert {(c.x_value, c.method) for c in cells} == {
            (1, "PRT"), (1, "REL"), (2, "PRT"), (2, "REL"),
        }


class TestRunStreamCell:
    def test_streaming_cell_matches_batch_results(self, forest):
        from repro.bench.harness import run_stream_cell

        batch = run_cell("exp", "tiny", forest, 2, "PRT", "tau", 2)
        cell = run_stream_cell("exp", "tiny", forest, 2, "tau", 2)
        assert cell.method == "PRT-S"
        assert cell.results == batch.results
        assert cell.candidates == batch.candidates
        assert cell.wall_time > 0
        assert cell.extra["ingest_rate"] > 0
        if cell.results:
            # The first pair must land before the stream finished.
            assert 0 < cell.extra["time_to_first_result"] <= cell.wall_time
        assert cell.extra["ted_calls"] >= 0

    def test_empty_stream_has_no_first_result(self):
        from repro.bench.harness import run_stream_cell

        cell = run_stream_cell("exp", "tiny", [], 1, "tau", 1)
        assert cell.results == 0
        assert cell.extra["time_to_first_result"] is None
