"""Tests for the experiment registry (repro.bench.experiments)."""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    SCALES,
    Scale,
    build_dataset,
    get_scale,
    run_experiment,
)
from repro.errors import InvalidParameterError

# A deliberately tiny scale so registry smoke tests stay fast.
TINY = Scale(
    name="tiny",
    join_count=14,
    taus=(1,),
    cardinalities=(8, 14),
    card_tau=1,
    sens_count=12,
    sens_tau=1,
    fanouts=(2, 4),
    depths=(4, 6),
    label_counts=(5, 20),
    tree_sizes=(15, 25),
    ablation_count=14,
    datasets=("sentiment",),
)


class TestScales:
    def test_known_scales_registered(self):
        assert {"smoke", "small", "medium"} <= set(SCALES)

    def test_get_scale_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert get_scale().name == "small"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert get_scale().name == "smoke"
        assert get_scale("medium").name == "medium"

    def test_unknown_scale(self):
        with pytest.raises(InvalidParameterError):
            get_scale("galactic")

    def test_small_scale_matches_table1_grids(self):
        scale = SCALES["small"]
        assert scale.fanouts == (2, 3, 4, 5, 6)
        assert scale.depths == (4, 5, 6, 7, 8)
        assert scale.label_counts == (3, 5, 10, 20, 50)
        assert scale.tree_sizes == (40, 80, 120, 160, 200)
        assert scale.taus == (1, 2, 3, 4, 5)
        assert scale.card_tau == 3


class TestBuildDataset:
    @pytest.mark.parametrize("name", ["swissprot", "treebank", "sentiment",
                                      "synthetic"])
    def test_all_four_datasets(self, name):
        trees = build_dataset(name, 10)
        assert len(trees) == 10

    def test_unknown_dataset(self):
        with pytest.raises(InvalidParameterError):
            build_dataset("wikipedia", 10)

    def test_deterministic_by_seed(self):
        a = [t.to_bracket() for t in build_dataset("treebank", 8, seed=1)]
        b = [t.to_bracket() for t in build_dataset("treebank", 8, seed=1)]
        assert a == b


class TestRegistry:
    def test_every_figure_has_an_experiment(self):
        for required in ("fig10", "fig11", "fig12", "fig13",
                         "fig14f", "fig14d", "fig14l", "fig14t",
                         "ablation_partitioning", "ablation_filters",
                         "ablation_str_banding"):
            assert required in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(InvalidParameterError):
            run_experiment("fig99")

    def test_fig10_11_cells_cover_grid(self):
        cells = run_experiment("fig10", scale=TINY)
        assert {c.method for c in cells} == {"STR", "SET", "PRT", "REL"}
        assert {c.x_value for c in cells} == set(TINY.taus)
        assert {c.dataset for c in cells} == {"sentiment"}
        # All methods agree on the result count per workload.
        by_x = {}
        for cell in cells:
            by_x.setdefault(cell.x_value, set()).add(cell.results)
        assert all(len(counts) == 1 for counts in by_x.values())

    def test_fig12_13_prefix_subsets(self):
        cells = run_experiment("fig12", scale=TINY)
        assert {c.x_value for c in cells} == set(TINY.cardinalities)

    def test_fig14_parameter_sweep(self):
        cells = run_experiment("fig14f", scale=TINY)
        assert {c.x_value for c in cells} == set(TINY.fanouts)
        assert all(c.x_name == "fanout" for c in cells)

    def test_ablation_partitioning_strategies(self):
        cells = run_experiment("ablation_partitioning", scale=TINY)
        assert {c.method for c in cells} == {"PRT[maxmin]", "PRT[random]"}
        # Both strategies are exact: same result counts per tau.
        for tau in TINY.taus:
            counts = {c.results for c in cells if c.x_value == tau}
            assert len(counts) == 1

    def test_ablation_filters_soundness_column(self):
        cells = run_experiment("ablation_filters", scale=TINY)
        rel = next(c for c in cells if c.method == "REL")
        for cell in cells:
            assert cell.results <= rel.results  # never over-report
            if cell.method == "REL":
                continue
            window = cell.method.split("/")[1].rstrip("]")
            if window != "paper":  # sound windows must be exact
                assert cell.results == rel.results, cell.method
