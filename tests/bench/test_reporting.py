"""Tests for benchmark table rendering (repro.bench.reporting)."""

from repro.bench.harness import CellResult
from repro.bench.reporting import (
    candidates_table,
    format_table,
    render_figure,
    runtime_table,
)


def cell(method, x, dataset="ds", candidates=10, results=5):
    return CellResult(
        experiment="exp",
        dataset=dataset,
        method=method,
        x_name="tau",
        x_value=x,
        candidate_time=0.5,
        verify_time=1.5,
        candidates=candidates,
        results=results,
        ted_calls=candidates,
        wall_time=2.1,
    )


class TestFormatTable:
    def test_alignment_and_markdown(self):
        table = format_table(["a", "long header"], [[1, 2], ["xyz", 4]])
        lines = table.splitlines()
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}
        assert all(line.startswith("|") and line.endswith("|") for line in lines)
        assert len({len(line) for line in lines}) == 1  # rectangular


class TestFigureTables:
    def test_runtime_table_excludes_rel(self):
        cells = [cell("STR", 1), cell("PRT", 1), cell("REL", 1)]
        table = runtime_table(cells, "ds")
        assert "STR" in table and "PRT" in table
        assert "REL" not in table

    def test_candidates_table_uses_results_for_rel(self):
        cells = [
            cell("PRT", 1, candidates=42, results=5),
            cell("REL", 1, candidates=99, results=5),
        ]
        table = candidates_table(cells, "ds")
        assert "42" in table
        assert "99" not in table  # REL shows its result count, 5
        assert "| 1" in table

    def test_method_column_order(self):
        cells = [cell(m, 1) for m in ("PRT", "REL", "STR", "SET")]
        header = candidates_table(cells, "ds").splitlines()[0]
        assert header.index("SET") < header.index("STR") < header.index("PRT")

    def test_sparse_grid_dash(self):
        cells = [cell("PRT", 1), cell("STR", 2)]
        table = candidates_table(cells, "ds")
        assert "-" in table

    def test_render_figure_sections(self):
        cells = [cell("PRT", 1, dataset="d1"), cell("PRT", 1, dataset="d2")]
        text = render_figure("My Figure", cells)
        assert text.startswith("== My Figure ==")
        assert "-- dataset: d1 --" in text
        assert "-- dataset: d2 --" in text


class TestStreamTable:
    def test_stream_columns(self):
        from repro.bench.harness import run_stream_cell
        from repro.bench.reporting import stream_table
        import random
        from tests.conftest import make_cluster_forest

        rng = random.Random(3)
        forest = make_cluster_forest(
            rng, clusters=2, cluster_size=3, base_size=8, max_edits=2
        )
        cells = [run_stream_cell("exp", "tiny", forest, tau, "tau", tau)
                 for tau in (1, 2)]
        table = stream_table(cells, "tiny")
        assert "ingest (trees/s)" in table
        assert "first result (s)" in table
        assert "PRT-S" in table
        # One row per tau plus header/separator.
        assert len(table.splitlines()) == 4
