"""Tests for similarity search (repro.search)."""

import pytest

from repro.core.join import PartSJConfig
from repro.errors import InvalidParameterError
from repro.search import SimilaritySearcher, similarity_search
from repro.ted.zhang_shasha import zhang_shasha
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest, make_random_tree


def brute_force_search(query, trees, tau):
    return {
        i for i, tree in enumerate(trees)
        if zhang_shasha(query, tree) <= tau
    }


class TestSimilaritySearch:
    def test_simple_hit(self):
        trees = [Tree.from_bracket("{a{b}{c}}"), Tree.from_bracket("{x{y{z}}}")]
        hits = similarity_search(Tree.from_bracket("{a{b}}"), trees, 1)
        assert [(h.index, h.distance) for h in hits] == [(0, 1)]

    def test_matches_brute_force(self, rng):
        trees = make_cluster_forest(
            rng, clusters=4, cluster_size=3, base_size=9, max_edits=3
        )
        for _ in range(8):
            query = trees[rng.randrange(len(trees))]
            for tau in (0, 1, 2, 3):
                expected = brute_force_search(query, trees, tau)
                hits = similarity_search(query, trees, tau)
                assert {h.index for h in hits} == expected
                for hit in hits:
                    assert hit.distance == zhang_shasha(query, trees[hit.index])

    def test_query_larger_and_smaller_than_collection(self, rng):
        trees = [make_random_tree(rng, size) for size in (3, 6, 9, 12)]
        for query_size in (2, 7, 14):
            query = make_random_tree(rng, query_size)
            for tau in (1, 3):
                expected = brute_force_search(query, trees, tau)
                got = {h.index for h in similarity_search(query, trees, tau)}
                assert got == expected

    def test_hits_sorted_by_index(self, rng):
        trees = make_cluster_forest(
            rng, clusters=2, cluster_size=4, base_size=8, max_edits=1
        )
        hits = similarity_search(trees[0], trees, 3)
        indices = [h.index for h in hits]
        assert indices == sorted(indices)

    def test_empty_collection(self):
        assert similarity_search(Tree.from_bracket("{a}"), [], 2) == []


class TestSearcherReuse:
    def test_many_queries_one_index(self, rng):
        trees = make_cluster_forest(
            rng, clusters=3, cluster_size=3, base_size=10, max_edits=2
        )
        searcher = SimilaritySearcher(trees, tau=2)
        for query in trees[:5]:
            expected = brute_force_search(query, trees, 2)
            assert {h.index for h in searcher.search(query)} == expected

    def test_paper_config_variant(self, rng):
        trees = make_cluster_forest(
            rng, clusters=2, cluster_size=4, base_size=10, max_edits=2
        )
        searcher = SimilaritySearcher(
            trees, tau=1,
            config=PartSJConfig(semantics="paper", postorder_filter="safe"),
        )
        for query in trees[:4]:
            assert {h.index for h in searcher.search(query)} == (
                brute_force_search(query, trees, 1)
            )

    def test_negative_tau_rejected(self):
        with pytest.raises(InvalidParameterError):
            SimilaritySearcher([Tree.from_bracket("{a}")], tau=-1)
