"""End-to-end integration: generate -> persist -> load -> join -> search.

These tests chain the public API the way a downstream user would, so a
regression anywhere in the pipeline (generator, IO, join registry, search)
surfaces even if every unit test still passes.
"""

import pytest

import repro
from repro import (
    PartSJConfig,
    SimilaritySearcher,
    SyntheticParams,
    collection_stats,
    generate_forest,
    load_trees,
    save_trees,
    similarity_join,
    similarity_search,
    ted,
)


@pytest.fixture(scope="module")
def pipeline_forest(tmp_path_factory):
    """A persisted-and-reloaded forest, as a user's workflow would have it."""
    params = SyntheticParams(avg_size=18, cluster_size=4, decay=0.08)
    forest = generate_forest(40, params, seed=77)
    path = tmp_path_factory.mktemp("data") / "forest.trees.gz"
    save_trees(forest, path, comment="integration fixture")
    return load_trees(path)


class TestPipeline:
    def test_round_trip_preserves_statistics(self, pipeline_forest):
        stats = collection_stats(pipeline_forest)
        assert stats.count == 40
        assert stats.average_size > 5

    def test_all_methods_one_result_set(self, pipeline_forest):
        tau = 2
        results = {
            method: similarity_join(pipeline_forest, tau, method=method)
            for method in ("partsj", "str", "set", "histogram", "nested_loop")
        }
        reference = results["nested_loop"].pair_set()
        assert reference, "fixture must produce a non-empty join"
        for method, result in results.items():
            assert result.pair_set() == reference, method

    def test_join_distances_verified_by_ted(self, pipeline_forest):
        result = similarity_join(pipeline_forest, 2)
        for pair in result.pairs[:10]:
            assert ted(pipeline_forest[pair.i], pipeline_forest[pair.j]) == (
                pair.distance
            )

    def test_search_consistent_with_join(self, pipeline_forest):
        tau = 2
        join_pairs = similarity_join(pipeline_forest, tau).pair_set()
        searcher = SimilaritySearcher(pipeline_forest, tau)
        # For each tree, search hits (excluding itself) must equal its join
        # partners.
        for i in range(0, len(pipeline_forest), 7):
            partners = {j for a, j in join_pairs if a == i} | {
                a for a, j in join_pairs if j == i
            }
            hits = {
                h.index for h in searcher.search(pipeline_forest[i])
                if h.index != i
            }
            # Search may also hit trees identical to tree i located at
            # other indices — those are exactly distance<=tau partners too.
            assert hits == partners

    def test_one_shot_search_agrees_with_searcher(self, pipeline_forest):
        query = pipeline_forest[3]
        one_shot = {
            (h.index, h.distance)
            for h in similarity_search(query, pipeline_forest, 1)
        }
        reused = {
            (h.index, h.distance)
            for h in SimilaritySearcher(pipeline_forest, 1).search(query)
        }
        assert one_shot == reused

    def test_paper_and_safe_configs_agree_here(self, pipeline_forest):
        # The strict-matching configuration with the sound window has never
        # diverged from ground truth in testing; keep a pipeline-level watch.
        tau = 2
        safe = similarity_join(pipeline_forest, tau).pair_set()
        strict = similarity_join(
            pipeline_forest, tau,
            config=PartSJConfig(semantics="paper", postorder_filter="safe"),
        ).pair_set()
        assert strict == safe


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_string(self):
        major = int(repro.__version__.split(".")[0])
        assert major >= 1
