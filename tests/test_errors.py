"""Tests for the exception hierarchy (repro.errors)."""

import pytest

from repro.errors import (
    EditOperationError,
    IngestError,
    InvalidParameterError,
    NotPartitionableError,
    PersistenceError,
    ReproError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    StaleSnapshotError,
    TaskTimeoutError,
    TreeFormatError,
    WALCorruptError,
    WorkerFailureError,
)


def test_all_errors_derive_from_repro_error():
    for cls in (TreeFormatError, InvalidParameterError, EditOperationError,
                NotPartitionableError, WorkerFailureError, TaskTimeoutError,
                IngestError, PersistenceError, SnapshotFormatError,
                SnapshotIntegrityError, StaleSnapshotError, WALCorruptError):
        assert issubclass(cls, ReproError)


def test_value_error_compatibility():
    # Input-validation errors double as ValueError so generic callers can
    # catch them idiomatically.
    assert issubclass(TreeFormatError, ValueError)
    assert issubclass(InvalidParameterError, ValueError)
    assert issubclass(EditOperationError, ValueError)


def test_persistence_errors_share_one_catch_site():
    # from_file's warn-and-rebuild fallback catches PersistenceError; every
    # load-time failure mode must funnel through it.
    for cls in (SnapshotFormatError, SnapshotIntegrityError,
                StaleSnapshotError, WALCorruptError):
        assert issubclass(cls, PersistenceError)


def test_wal_corrupt_error_carries_salvage_stats():
    exc = WALCorruptError("damaged", salvaged_records=3, good_bytes=120,
                          offset=128)
    assert exc.salvaged_records == 3
    assert exc.good_bytes == 120
    assert exc.offset == 128


def test_single_catch_site():
    with pytest.raises(ReproError):
        raise NotPartitionableError("nope")
