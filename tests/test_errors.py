"""Tests for the exception hierarchy (repro.errors)."""

import pytest

from repro.errors import (
    EditOperationError,
    IngestError,
    InvalidParameterError,
    NotPartitionableError,
    ReproError,
    TaskTimeoutError,
    TreeFormatError,
    WorkerFailureError,
)


def test_all_errors_derive_from_repro_error():
    for cls in (TreeFormatError, InvalidParameterError, EditOperationError,
                NotPartitionableError, WorkerFailureError, TaskTimeoutError,
                IngestError):
        assert issubclass(cls, ReproError)


def test_value_error_compatibility():
    # Input-validation errors double as ValueError so generic callers can
    # catch them idiomatically.
    assert issubclass(TreeFormatError, ValueError)
    assert issubclass(InvalidParameterError, ValueError)
    assert issubclass(EditOperationError, ValueError)


def test_single_catch_site():
    with pytest.raises(ReproError):
        raise NotPartitionableError("nope")
