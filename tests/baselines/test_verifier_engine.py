"""Integration tests: every join rides the threshold-aware verifier.

The ground truth here deliberately bypasses the Verifier: it is a direct
nested loop over :func:`repro.ted.zhang_shasha.zhang_shasha`.  If the new
engine (bounds, upper-bound short-circuit, banded DP) dropped or invented
a pair anywhere, these tests catch it against an independent oracle.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.histogram_join import histogram_join
from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.set_join import set_join
from repro.baselines.str_join import str_join
from repro.core.join import partsj_join
from repro.ted.zhang_shasha import zhang_shasha
from tests.conftest import make_cluster_forest
from tests.core.test_join_properties import clustered_forests

ALL_JOINS = [
    ("NL", nested_loop_join),
    ("STR", str_join),
    ("SET", set_join),
    ("HST", histogram_join),
    ("PRT", partsj_join),
]


def brute_force(trees, tau):
    """Oracle result set, computed without the Verifier."""
    return {
        (i, j): zhang_shasha(trees[i], trees[j])
        for i in range(len(trees))
        for j in range(i + 1, len(trees))
        if zhang_shasha(trees[i], trees[j]) <= tau
    }


@pytest.mark.parametrize("name,join", ALL_JOINS)
@pytest.mark.parametrize("tau", [0, 1, 2, 3])
def test_joins_match_oracle_pairs_and_distances(rng, name, join, tau):
    trees = make_cluster_forest(
        rng, clusters=4, cluster_size=4, base_size=9, max_edits=3
    )
    truth = brute_force(trees, tau)
    result = join(trees, tau)
    assert result.pair_set() == set(truth), name
    # The engine still reports exact distances for every accepted pair.
    assert {p.key(): p.distance for p in result.pairs} == truth, name


@given(forest=clustered_forests(), tau=st.integers(min_value=0, max_value=3))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_joins_match_oracle_property(forest, tau):
    truth = set(brute_force(forest, tau))
    for name, join in ALL_JOINS:
        assert join(forest, tau).pair_set() == truth, name


@pytest.mark.parametrize("name,join", ALL_JOINS)
def test_verification_counters_surface_in_stats(rng, name, join):
    trees = make_cluster_forest(
        rng, clusters=3, cluster_size=4, base_size=10, max_edits=4
    )
    extra = join(trees, 2).stats.extra
    for key in ("lb_filtered", "ub_accepted", "ted_early_exits"):
        assert key in extra, (name, key)
        assert extra[key] >= 0, (name, key)


def test_partsj_filters_actually_fire(rng):
    # Clusters far apart in label space: PartSJ's structural probe still
    # surfaces some cross-cluster candidates, which the verifier's bound
    # pipeline must reject without a DP.
    trees = make_cluster_forest(
        rng, clusters=4, cluster_size=5, base_size=12, max_edits=5
    )
    stats = partsj_join(trees, 2).stats
    assert stats.extra["lb_filtered"] + stats.extra["ub_accepted"] > 0
    assert stats.ted_calls == stats.candidates - stats.extra["lb_filtered"]


def test_nested_loop_unassisted_equals_assisted(rng):
    trees = make_cluster_forest(
        rng, clusters=3, cluster_size=3, base_size=8, max_edits=3
    )
    assisted = nested_loop_join(trees, 2, use_bounds=True)
    unassisted = nested_loop_join(trees, 2, use_bounds=False)
    assert assisted.pair_set() == unassisted.pair_set()
