"""Tests for shared join plumbing (repro.baselines.common)."""

import pytest

from repro.baselines.common import (
    JoinPair,
    JoinResult,
    JoinStats,
    SizeSortedCollection,
    Verifier,
    check_join_inputs,
)
from repro.errors import InvalidParameterError
from repro.ted.zhang_shasha import zhang_shasha
from repro.tree.node import Tree
from tests.conftest import make_random_tree


class TestSizeSortedCollection:
    def test_order_is_ascending_by_size(self, rng):
        trees = [make_random_tree(rng, size) for size in (9, 2, 5, 7, 2)]
        collection = SizeSortedCollection(trees)
        sizes = [collection.tree_at(p).size for p in range(len(trees))]
        assert sizes == sorted(sizes)

    def test_original_indices_preserved(self, rng):
        trees = [make_random_tree(rng, size) for size in (9, 2, 5)]
        collection = SizeSortedCollection(trees)
        for position in range(3):
            i = collection.original_index(position)
            assert trees[i] is collection.tree_at(position)

    def test_window_pairs_match_brute_force(self, rng):
        trees = [make_random_tree(rng, rng.randint(2, 12)) for _ in range(12)]
        collection = SizeSortedCollection(trees)
        for tau in (0, 1, 3, 10):
            got = {
                tuple(sorted((collection.original_index(a), collection.original_index(b))))
                for a, b in collection.iter_window_pairs(tau)
            }
            expected = {
                (i, j)
                for i in range(len(trees))
                for j in range(i + 1, len(trees))
                if abs(trees[i].size - trees[j].size) <= tau
            }
            assert got == expected

    def test_window_pairs_yield_each_pair_once(self, rng):
        trees = [make_random_tree(rng, 5) for _ in range(6)]  # all same size
        collection = SizeSortedCollection(trees)
        pairs = list(collection.iter_window_pairs(0))
        assert len(pairs) == len(set(pairs)) == 15  # C(6, 2)

    def test_make_pair_canonicalizes(self, rng):
        trees = [make_random_tree(rng, 4), make_random_tree(rng, 3)]
        collection = SizeSortedCollection(trees)
        pair = collection.make_pair(0, 1, 2)  # positions, not indices
        assert pair.i < pair.j


class TestVerifier:
    def test_distance_matches_zhang_shasha(self, rng):
        trees = [make_random_tree(rng, rng.randint(2, 10)) for _ in range(6)]
        verifier = Verifier(trees, tau=3)
        for i in range(len(trees)):
            for j in range(i + 1, len(trees)):
                assert verifier.distance(i, j) == zhang_shasha(trees[i], trees[j])

    def test_verify_threshold(self):
        trees = [Tree.from_bracket("{a{b}}"), Tree.from_bracket("{a{b}{c}{d}}")]
        assert Verifier(trees, tau=1).verify(0, 1) is None
        assert Verifier(trees, tau=2).verify(0, 1) == 2

    def test_counters_accumulate(self, rng):
        trees = [make_random_tree(rng, 5) for _ in range(4)]
        verifier = Verifier(trees, tau=2)
        verifier.verify(0, 1)
        verifier.verify(2, 3)
        assert verifier.stats_ted_calls == 2
        assert verifier.stats_time > 0

    def test_annotations_are_cached(self, rng):
        trees = [make_random_tree(rng, 8) for _ in range(3)]
        verifier = Verifier(trees, tau=2)
        verifier.verify(0, 1)
        first = verifier._annotation(0)
        verifier.verify(0, 2)
        assert verifier._annotation(0) is first


class TestResultTypes:
    def test_join_pair_key(self):
        assert JoinPair(2, 5, 1).key() == (2, 5)

    def test_join_result_container(self):
        pairs = [JoinPair(0, 1, 1), JoinPair(1, 2, 0)]
        result = JoinResult(pairs=pairs, stats=JoinStats("X", 1, 3))
        assert len(result) == 2
        assert result.pair_set() == {(0, 1), (1, 2)}
        assert list(result) == pairs

    def test_stats_total_time(self):
        stats = JoinStats("X", 1, 3, candidate_time=1.5, verify_time=0.5)
        assert stats.total_time == 2.0

    def test_check_join_inputs(self):
        with pytest.raises(InvalidParameterError):
            check_join_inputs([Tree.from_bracket("{a}")], -2)
        with pytest.raises(InvalidParameterError):
            check_join_inputs([object()], 1)
        check_join_inputs([Tree.from_bracket("{a}")], 0)  # fine
