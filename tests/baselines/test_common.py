"""Tests for shared join plumbing (repro.baselines.common)."""

import pytest

from repro.baselines.common import (
    JoinPair,
    JoinResult,
    JoinStats,
    SizeSortedCollection,
    Verifier,
    check_join_inputs,
)
from repro.errors import InvalidParameterError
from repro.ted.zhang_shasha import zhang_shasha
from repro.tree.node import Tree
from tests.conftest import make_random_tree


class TestSizeSortedCollection:
    def test_order_is_ascending_by_size(self, rng):
        trees = [make_random_tree(rng, size) for size in (9, 2, 5, 7, 2)]
        collection = SizeSortedCollection(trees)
        sizes = [collection.tree_at(p).size for p in range(len(trees))]
        assert sizes == sorted(sizes)

    def test_original_indices_preserved(self, rng):
        trees = [make_random_tree(rng, size) for size in (9, 2, 5)]
        collection = SizeSortedCollection(trees)
        for position in range(3):
            i = collection.original_index(position)
            assert trees[i] is collection.tree_at(position)

    def test_window_pairs_match_brute_force(self, rng):
        trees = [make_random_tree(rng, rng.randint(2, 12)) for _ in range(12)]
        collection = SizeSortedCollection(trees)
        for tau in (0, 1, 3, 10):
            got = {
                tuple(sorted((collection.original_index(a), collection.original_index(b))))
                for a, b in collection.iter_window_pairs(tau)
            }
            expected = {
                (i, j)
                for i in range(len(trees))
                for j in range(i + 1, len(trees))
                if abs(trees[i].size - trees[j].size) <= tau
            }
            assert got == expected

    def test_window_pairs_yield_each_pair_once(self, rng):
        trees = [make_random_tree(rng, 5) for _ in range(6)]  # all same size
        collection = SizeSortedCollection(trees)
        pairs = list(collection.iter_window_pairs(0))
        assert len(pairs) == len(set(pairs)) == 15  # C(6, 2)

    def test_make_pair_canonicalizes(self, rng):
        trees = [make_random_tree(rng, 4), make_random_tree(rng, 3)]
        collection = SizeSortedCollection(trees)
        pair = collection.make_pair(0, 1, 2)  # positions, not indices
        assert pair.i < pair.j


class TestVerifier:
    def test_distance_matches_zhang_shasha(self, rng):
        trees = [make_random_tree(rng, rng.randint(2, 10)) for _ in range(6)]
        verifier = Verifier(trees, tau=3)
        for i in range(len(trees)):
            for j in range(i + 1, len(trees)):
                assert verifier.distance(i, j) == zhang_shasha(trees[i], trees[j])

    def test_verify_threshold(self):
        trees = [Tree.from_bracket("{a{b}}"), Tree.from_bracket("{a{b}{c}{d}}")]
        assert Verifier(trees, tau=1).verify(0, 1) is None
        assert Verifier(trees, tau=2).verify(0, 1) == 2

    def test_counters_accumulate(self, rng):
        # Near-identical pairs pass every bound, so each verify runs a DP.
        base = make_random_tree(rng, 20)
        trees = [base, base.copy(), base, base.copy()]
        verifier = Verifier(trees, tau=2)
        assert verifier.verify(0, 1) == 0
        assert verifier.verify(2, 3) == 0
        assert verifier.stats_ted_calls == 2
        assert verifier.stats_time > 0

    def test_lower_bound_filter_counts_and_skips_dp(self):
        trees = [
            Tree.from_bracket("{a{a}{a}{a}{a}{a}{a}}"),
            Tree.from_bracket("{z{y}{x}{w}{v}{u}{t}}"),
        ]
        verifier = Verifier(trees, tau=2)
        assert verifier.verify(0, 1) is None
        assert verifier.stats_lb_filtered == 1
        assert verifier.stats_ted_calls == 0  # no DP was needed

    def test_upper_bound_accepts_without_filters(self):
        trees = [Tree.from_bracket("{a{b}}"), Tree.from_bracket("{a{c}}")]
        verifier = Verifier(trees, tau=4)  # trivial upper bound = 2 <= tau
        assert verifier.verify(0, 1) == 1  # exact distance still reported
        assert verifier.stats_ub_accepted == 1
        assert verifier.stats_lb_filtered == 0

    def test_upper_bound_certified_mode_skips_dp(self):
        trees = [Tree.from_bracket("{a{b}}"), Tree.from_bracket("{a{c}}")]
        verifier = Verifier(trees, tau=4, exact_distances=False)
        value = verifier.verify(0, 1)
        assert value == 2  # the trivial upper bound, certified <= tau
        assert verifier.stats_ted_calls == 0

    def test_ted_early_exit_counts(self):
        # This pair survives every bag and traversal-string bound at tau=2
        # but has TED 4, so only the banded DP's cutoff can reject it.
        trees = [
            Tree.from_bracket("{b{a{a}}{a}{a}}"),
            Tree.from_bracket("{b{a{a{a{a{a}}}}}{a}}"),
        ]
        verifier = Verifier(trees, tau=2)
        assert verifier.verify(0, 1) is None
        assert verifier.stats_ted_early_exits == 1
        assert verifier.stats_lb_filtered == 0

    def test_threshold_unaware_mode_matches(self, rng):
        trees = [make_random_tree(rng, rng.randint(2, 12)) for _ in range(8)]
        fast = Verifier(trees, tau=2)
        slow = Verifier(trees, tau=2, threshold_aware=False)
        for i in range(len(trees)):
            for j in range(i + 1, len(trees)):
                assert fast.verify(i, j) == slow.verify(i, j)

    def test_verify_reports_exact_distances(self, rng):
        trees = [make_random_tree(rng, rng.randint(1, 10)) for _ in range(8)]
        for tau in (0, 1, 3, 6):
            verifier = Verifier(trees, tau=tau)
            for i in range(len(trees)):
                for j in range(i + 1, len(trees)):
                    exact = zhang_shasha(trees[i], trees[j])
                    expected = exact if exact <= tau else None
                    assert verifier.verify(i, j) == expected

    def test_extra_stats_keys(self):
        verifier = Verifier([Tree.from_bracket("{a}")], tau=1)
        assert set(verifier.extra_stats()) == {
            "lb_filtered",
            "ub_accepted",
            "ted_early_exits",
        }

    def test_annotations_are_cached(self, rng):
        trees = [make_random_tree(rng, 8) for _ in range(3)]
        verifier = Verifier(trees, tau=2)
        verifier.verify(0, 1)
        first = verifier._annotation(0)
        verifier.verify(0, 2)
        assert verifier._annotation(0) is first


class TestResultTypes:
    def test_join_pair_key(self):
        assert JoinPair(2, 5, 1).key() == (2, 5)

    def test_join_result_container(self):
        pairs = [JoinPair(0, 1, 1), JoinPair(1, 2, 0)]
        result = JoinResult(pairs=pairs, stats=JoinStats("X", 1, 3))
        assert len(result) == 2
        assert result.pair_set() == {(0, 1), (1, 2)}
        assert list(result) == pairs

    def test_stats_total_time(self):
        stats = JoinStats("X", 1, 3, candidate_time=1.5, verify_time=0.5)
        assert stats.total_time == 2.0

    def test_check_join_inputs(self):
        with pytest.raises(InvalidParameterError):
            check_join_inputs([Tree.from_bracket("{a}")], -2)
        with pytest.raises(InvalidParameterError):
            check_join_inputs([object()], 1)
        check_join_inputs([Tree.from_bracket("{a}")], 0)  # fine


class TestIncrementalInsertion:
    """`SizeSortedCollection.insert`: the streaming engine's substrate."""

    def test_insert_matches_batch_construction(self, rng):
        trees = [make_random_tree(rng, rng.randint(1, 12)) for _ in range(20)]
        incremental = SizeSortedCollection([])
        for tree in trees:
            incremental.insert(tree)
        batch = SizeSortedCollection(trees)
        assert incremental.order == batch.order
        assert incremental.sizes == batch.sizes
        assert incremental.size_histogram() == batch.size_histogram()

    def test_histogram_cache_coherent_under_insertion(self, rng):
        """Regression: the cached histogram must never serve stale counts."""
        trees = [make_random_tree(rng, size) for size in (5, 5, 9)]
        collection = SizeSortedCollection(list(trees))
        first = collection.size_histogram()
        assert first == [(5, 2), (9, 1)]
        # Grow an existing run, open a new smallest run, a middle run and
        # a largest run — the cached list must update in place each time.
        collection.insert(make_random_tree(rng, 5))
        assert collection.size_histogram() == [(5, 3), (9, 1)]
        collection.insert(make_random_tree(rng, 2))
        assert collection.size_histogram() == [(2, 1), (5, 3), (9, 1)]
        collection.insert(make_random_tree(rng, 7))
        assert collection.size_histogram() == [(2, 1), (5, 3), (7, 1), (9, 1)]
        collection.insert(make_random_tree(rng, 30))
        assert collection.size_histogram() == [
            (2, 1), (5, 3), (7, 1), (9, 1), (30, 1)
        ]
        # And it must agree with a cold rebuild over the same trees.
        rebuilt = SizeSortedCollection(list(collection.trees))
        assert collection.size_histogram() == rebuilt.size_histogram()

    def test_histogram_built_after_inserts_is_correct_too(self, rng):
        collection = SizeSortedCollection([])
        for size in (4, 4, 2, 9, 4):
            collection.insert(make_random_tree(rng, size))
        # First histogram call *after* the inserts (nothing cached yet).
        assert collection.size_histogram() == [(2, 1), (4, 3), (9, 1)]

    def test_insert_is_stable_for_equal_sizes(self, rng):
        collection = SizeSortedCollection([])
        for _ in range(6):
            collection.insert(make_random_tree(rng, 5))
        assert collection.order == list(range(6))

    def test_version_counts_mutations(self, rng):
        collection = SizeSortedCollection([])
        assert collection.version == 0
        collection.insert(make_random_tree(rng, 3))
        collection.insert(make_random_tree(rng, 4))
        assert collection.version == 2

    def test_insert_rejects_non_tree_and_immutable_backing(self, rng):
        collection = SizeSortedCollection([])
        with pytest.raises(InvalidParameterError):
            collection.insert("nope")
        frozen = SizeSortedCollection(tuple([make_random_tree(rng, 3)]))
        with pytest.raises(InvalidParameterError):
            frozen.insert(make_random_tree(rng, 3))
