"""Tests for the ground-truth nested-loop join (repro.baselines.nested_loop)."""

from repro.baselines.nested_loop import nested_loop_join
from repro.ted.zhang_shasha import zhang_shasha
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest, make_random_tree


class TestGroundTruth:
    def test_matches_pairwise_ted(self, rng):
        trees = [make_random_tree(rng, rng.randint(2, 9)) for _ in range(8)]
        tau = 2
        expected = {
            (i, j)
            for i in range(len(trees))
            for j in range(i + 1, len(trees))
            if zhang_shasha(trees[i], trees[j]) <= tau
        }
        assert nested_loop_join(trees, tau).pair_set() == expected

    def test_reports_exact_distances(self, rng):
        trees = [make_random_tree(rng, rng.randint(2, 8)) for _ in range(6)]
        for pair in nested_loop_join(trees, 3).pairs:
            assert pair.distance == zhang_shasha(trees[pair.i], trees[pair.j])
            assert pair.distance <= 3

    def test_size_filter_skips_far_pairs(self):
        trees = [Tree.from_bracket("{a}"), Tree.from_bracket("{a{b}{c}{d}}")]
        stats = nested_loop_join(trees, 1).stats
        assert stats.pairs_considered == 0

    def test_bounds_reduce_candidates_not_results(self, rng):
        trees = make_cluster_forest(
            rng, clusters=4, cluster_size=3, base_size=10, max_edits=4
        )
        with_bounds = nested_loop_join(trees, 1, use_bounds=True)
        without = nested_loop_join(trees, 1, use_bounds=False)
        assert with_bounds.pair_set() == without.pair_set()
        assert with_bounds.stats.candidates <= without.stats.candidates

    def test_stats_method_label(self, sample_forest):
        assert nested_loop_join(sample_forest, 1).stats.method == "NL"
