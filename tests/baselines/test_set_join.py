"""Tests specific to the SET baseline (repro.baselines.set_join)."""

from repro.baselines.set_join import set_join
from repro.ted.binary_branch import binary_branch_distance
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest


class TestBibBudget:
    def test_pair_pruned_when_bib_exceeds_budget(self):
        t1 = Tree.from_bracket("{a{b}{c}{d}{e}{f}}")
        t2 = Tree.from_bracket("{z{y}{x}{w}{v}{u}}")
        assert binary_branch_distance(t1, t2) > 5  # sanity
        result = set_join([t1, t2], 1)
        assert result.stats.extra["pruned_by_bib"] == 1
        assert result.stats.candidates == 0

    def test_candidate_when_bib_within_budget(self):
        t1 = Tree.from_bracket("{a{b}{c}}")
        t2 = Tree.from_bracket("{a{b}{d}}")
        result = set_join([t1, t2], 1)
        assert result.stats.candidates == 1
        assert result.pair_set() == {(0, 1)}

    def test_budget_grows_with_tau(self, rng):
        trees = make_cluster_forest(
            rng, clusters=4, cluster_size=4, base_size=10, max_edits=4
        )
        candidates = [set_join(trees, tau).stats.candidates for tau in (0, 1, 2, 3)]
        assert candidates == sorted(candidates)

    def test_size_filter_applied_before_bib(self):
        t1 = Tree.from_bracket("{a}")
        t2 = Tree.from_bracket("{a{b}{c}{d}{e}}")
        result = set_join([t1, t2], 1)
        assert result.stats.pairs_considered == 0  # outside the size window


class TestStats:
    def test_method_name_and_counters(self, rng):
        trees = make_cluster_forest(
            rng, clusters=2, cluster_size=3, base_size=9, max_edits=2
        )
        stats = set_join(trees, 2).stats
        assert stats.method == "SET"
        assert stats.ted_calls == stats.candidates - stats.extra["lb_filtered"]
        assert stats.results <= stats.candidates
        assert stats.pairs_considered == (
            stats.candidates + stats.extra["pruned_by_bib"]
        )
