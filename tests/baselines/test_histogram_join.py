"""Tests for the histogram-filter join (repro.baselines.histogram_join)."""

from repro.baselines.histogram_join import histogram_join
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest


class TestFilters:
    def test_label_filter_prunes_disjoint_alphabets(self):
        trees = [Tree.from_bracket("{a{a}{a}}"), Tree.from_bracket("{z{z}{z}}")]
        result = histogram_join(trees, 1)
        assert result.pairs == []
        assert result.stats.extra["pruned_by_labels"] == 1

    def test_degree_filter_catches_shape_changes(self):
        # Same label bag, very different degree profile.
        star = Tree.from_bracket("{a{b}{b}{b}{b}{b}{b}}")
        chain = Tree.from_bracket("{a{b{b{b{b{b{b}}}}}}}")
        result = histogram_join([star, chain], 1)
        assert result.pairs == []
        assert result.stats.extra["pruned_by_degrees"] == 1

    def test_exactness(self, rng):
        from repro.baselines.nested_loop import nested_loop_join

        trees = make_cluster_forest(
            rng, clusters=3, cluster_size=4, base_size=9, max_edits=3
        )
        for tau in (0, 1, 2):
            assert histogram_join(trees, tau).pair_set() == (
                nested_loop_join(trees, tau).pair_set()
            )

    def test_stats(self, sample_forest):
        stats = histogram_join(sample_forest, 2).stats
        assert stats.method == "HST"
        # The verifier's bound pipeline may reject candidates without a DP;
        # every candidate is either filtered or runs exactly one DP.
        assert stats.ted_calls == stats.candidates - stats.extra["lb_filtered"]
