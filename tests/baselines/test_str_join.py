"""Tests specific to the STR baseline (repro.baselines.str_join)."""

from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.str_join import str_join
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest


class TestBandedFlag:
    def test_banded_and_full_agree(self, rng):
        trees = make_cluster_forest(
            rng, clusters=3, cluster_size=4, base_size=10, max_edits=3
        )
        for tau in (0, 1, 2):
            banded = str_join(trees, tau, banded=True)
            full = str_join(trees, tau, banded=False)
            assert banded.pair_set() == full.pair_set()
            assert banded.stats.candidates == full.stats.candidates
            assert banded.stats.extra["banded"] is True
            assert full.stats.extra["banded"] is False


class TestFilterBehaviour:
    def test_preorder_filter_prunes(self):
        # Same size, totally different labels: preorder filter kills it.
        trees = [Tree.from_bracket("{a{a}{a}}"), Tree.from_bracket("{z{z}{z}}")]
        result = str_join(trees, 1)
        assert result.pairs == []
        assert result.stats.extra["pruned_by_preorder"] == 1
        assert result.stats.candidates == 0

    def test_postorder_filter_adds_pruning(self):
        # The paper's Figure 3 trees: preorder strings are identical
        # (SED 0) but postorder strings differ by 2 — only the postorder
        # filter prunes the pair at tau=1.
        trees = [Tree.from_bracket("{a{b}{a{c}}}"), Tree.from_bracket("{a{b{a}{c}}}")]
        result = str_join(trees, 1)
        assert result.pairs == []
        assert result.stats.extra["pruned_by_preorder"] == 0
        assert result.stats.extra["pruned_by_postorder"] == 1

    def test_candidates_superset_of_results(self, rng):
        trees = make_cluster_forest(
            rng, clusters=3, cluster_size=3, base_size=9, max_edits=2
        )
        result = str_join(trees, 2)
        assert result.stats.candidates >= result.stats.results
        truth = nested_loop_join(trees, 2).pair_set()
        assert result.pair_set() == truth

    def test_stats_phase_accounting(self, rng):
        trees = make_cluster_forest(
            rng, clusters=2, cluster_size=3, base_size=8, max_edits=2
        )
        stats = str_join(trees, 1).stats
        assert stats.method == "STR"
        assert stats.candidate_time >= 0
        assert stats.ted_calls == stats.candidates - stats.extra["lb_filtered"]
