"""All baseline joins must return exactly the brute-force result set."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.histogram_join import histogram_join
from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.set_join import set_join
from repro.baselines.str_join import str_join
from tests.conftest import make_cluster_forest
from tests.core.test_join_properties import clustered_forests

BASELINES = [
    ("STR", str_join),
    ("SET", set_join),
    ("HST", histogram_join),
]


@pytest.mark.parametrize("name,join", BASELINES)
@pytest.mark.parametrize("tau", [0, 1, 2, 3])
def test_baselines_match_brute_force(rng, name, join, tau):
    trees = make_cluster_forest(
        rng, clusters=4, cluster_size=4, base_size=9, max_edits=3
    )
    truth = nested_loop_join(trees, tau).pair_set()
    assert join(trees, tau).pair_set() == truth, name


@given(forest=clustered_forests(), tau=st.integers(min_value=0, max_value=3))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_baselines_match_brute_force_property(forest, tau):
    truth = nested_loop_join(forest, tau).pair_set()
    for name, join in BASELINES:
        assert join(forest, tau).pair_set() == truth, name


@given(forest=clustered_forests(), tau=st.integers(min_value=0, max_value=3))
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_nested_loop_bounds_do_not_change_results(forest, tau):
    with_bounds = nested_loop_join(forest, tau, use_bounds=True)
    without = nested_loop_join(forest, tau, use_bounds=False)
    assert with_bounds.pair_set() == without.pair_set()
    distances_a = {p.key(): p.distance for p in with_bounds.pairs}
    distances_b = {p.key(): p.distance for p in without.pairs}
    assert distances_a == distances_b
