"""Tests for the command line interface (repro.cli)."""

import json

import pytest

from repro.cli import main
from repro.datasets.io import load_trees


@pytest.fixture
def dataset_file(tmp_path):
    path = tmp_path / "forest.trees"
    code = main([
        "generate", "--dataset", "synthetic", "--count", "30",
        "--seed", "4", "--size", "15", "--out", str(path),
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_requested_count(self, dataset_file):
        assert len(load_trees(dataset_file)) == 30

    def test_realistic_dataset(self, tmp_path):
        path = tmp_path / "sp.trees"
        assert main([
            "generate", "--dataset", "swissprot", "--count", "10",
            "--out", str(path),
        ]) == 0
        assert len(load_trees(path)) == 10


class TestStats:
    def test_prints_paper_style_line(self, dataset_file, capsys):
        assert main(["stats", str(dataset_file)]) == 0
        out = capsys.readouterr().out
        assert "30 trees" in out
        assert "average tree size" in out


class TestJoin:
    def test_default_join(self, dataset_file, capsys):
        assert main(["join", str(dataset_file), "--tau", "2"]) == 0
        assert "PRT(tau=2" in capsys.readouterr().out

    def test_pairs_output(self, dataset_file, capsys):
        assert main([
            "join", str(dataset_file), "--tau", "3", "--method", "nested_loop",
            "--pairs",
        ]) == 0
        out = capsys.readouterr().out
        assert "NL(tau=3" in out

    def test_json_output(self, dataset_file, capsys):
        assert main(["join", str(dataset_file), "--tau", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["tau"] == 1
        assert isinstance(payload["pairs"], list)

    def test_methods_agree_via_cli(self, dataset_file, capsys):
        pair_sets = {}
        for method in ("partsj", "str", "set", "nested_loop"):
            main(["join", str(dataset_file), "--tau", "2", "--method", method,
                  "--json"])
            payload = json.loads(capsys.readouterr().out)
            pair_sets[method] = {tuple(p[:2]) for p in payload["pairs"]}
        assert len(set(map(frozenset, pair_sets.values()))) == 1

    def test_multi_tau_shares_one_session(self, dataset_file, capsys):
        # Repeatable --tau: one prepared collection, one payload per tau.
        assert main([
            "join", str(dataset_file), "--tau", "1", "--tau", "2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        taus = [q["stats"]["tau"] for q in payload["queries"]]
        assert taus == [1, 2]
        # tau=2 results are a superset of tau=1's.
        pairs1 = {tuple(p[:2]) for p in payload["queries"][0]["pairs"]}
        pairs2 = {tuple(p[:2]) for p in payload["queries"][1]["pairs"]}
        assert pairs1 <= pairs2

    def test_multi_tau_text_output(self, dataset_file, capsys):
        assert main([
            "join", str(dataset_file), "--tau", "1", "--tau", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "PRT(tau=1" in out and "PRT(tau=2" in out

    def test_explain_prints_plan(self, dataset_file, capsys):
        assert main([
            "join", str(dataset_file), "--tau", "1", "--explain",
        ]) == 0
        out = capsys.readouterr().out
        assert "# plan:" in out
        plan_line = next(l for l in out.splitlines() if l.startswith("# plan:"))
        plan = json.loads(plan_line[len("# plan:"):])
        assert plan["kind"] == "join" and plan["tau"] == 1

    def test_explain_in_json_payload(self, dataset_file, capsys):
        assert main([
            "join", str(dataset_file), "--tau", "1", "--json", "--explain",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["method"] == "partsj"


class TestSearchAndTed:
    def test_search(self, dataset_file, capsys):
        first_tree = load_trees(dataset_file)[0].to_bracket()
        assert main([
            "search", str(dataset_file), "--query", first_tree, "--tau", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "0\t0" in out  # tree 0 at distance 0

    def test_multi_query_search_shares_one_session(self, dataset_file, capsys):
        trees = load_trees(dataset_file)
        assert main([
            "search", str(dataset_file),
            "--query", trees[0].to_bracket(),
            "--query", trees[1].to_bracket(),
            "--tau", "0",
        ]) == 0
        captured = capsys.readouterr()
        assert "0\t0" in captured.out  # query 0 found tree 0
        assert "1\t0" in captured.out  # query 1 found tree 1
        assert "# query 0:" in captured.err
        assert "# query 1:" in captured.err

    def test_search_explain(self, dataset_file, capsys):
        trees = load_trees(dataset_file)
        assert main([
            "search", str(dataset_file), "--query", trees[0].to_bracket(),
            "--tau", "1", "--explain",
        ]) == 0
        out = capsys.readouterr().out
        plan_line = next(l for l in out.splitlines() if l.startswith("# plan:"))
        assert json.loads(plan_line[len("# plan:"):])["kind"] == "search"

    def test_ted(self, capsys):
        assert main(["ted", "{a{b}{c}}", "{a{b}}"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_ted_algorithm_flag(self, capsys):
        assert main(["ted", "{a}", "{b}", "--algorithm", "zhang_shasha"]) == 0
        assert capsys.readouterr().out.strip() == "1"


class TestErrors:
    def test_repro_errors_exit_code_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.trees"
        bad.write_text("{oops\n")
        assert main(["stats", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_query_tree(self, dataset_file):
        assert main([
            "search", str(dataset_file), "--query", "{broken", "--tau", "1",
        ]) == 2
