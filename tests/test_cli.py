"""Tests for the command line interface (repro.cli)."""

import json

import pytest

from repro.cli import main
from repro.datasets.io import load_trees


@pytest.fixture
def dataset_file(tmp_path):
    path = tmp_path / "forest.trees"
    code = main([
        "generate", "--dataset", "synthetic", "--count", "30",
        "--seed", "4", "--size", "15", "--out", str(path),
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_requested_count(self, dataset_file):
        assert len(load_trees(dataset_file)) == 30

    def test_realistic_dataset(self, tmp_path):
        path = tmp_path / "sp.trees"
        assert main([
            "generate", "--dataset", "swissprot", "--count", "10",
            "--out", str(path),
        ]) == 0
        assert len(load_trees(path)) == 10


class TestStats:
    def test_prints_paper_style_line(self, dataset_file, capsys):
        assert main(["stats", str(dataset_file)]) == 0
        out = capsys.readouterr().out
        assert "30 trees" in out
        assert "average tree size" in out


class TestJoin:
    def test_default_join(self, dataset_file, capsys):
        assert main(["join", str(dataset_file), "--tau", "2"]) == 0
        assert "PRT(tau=2" in capsys.readouterr().out

    def test_pairs_output(self, dataset_file, capsys):
        assert main([
            "join", str(dataset_file), "--tau", "3", "--method", "nested_loop",
            "--pairs",
        ]) == 0
        out = capsys.readouterr().out
        assert "NL(tau=3" in out

    def test_json_output(self, dataset_file, capsys):
        assert main(["join", str(dataset_file), "--tau", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["tau"] == 1
        assert isinstance(payload["pairs"], list)

    def test_methods_agree_via_cli(self, dataset_file, capsys):
        pair_sets = {}
        for method in ("partsj", "str", "set", "nested_loop"):
            main(["join", str(dataset_file), "--tau", "2", "--method", method,
                  "--json"])
            payload = json.loads(capsys.readouterr().out)
            pair_sets[method] = {tuple(p[:2]) for p in payload["pairs"]}
        assert len(set(map(frozenset, pair_sets.values()))) == 1

    def test_multi_tau_shares_one_session(self, dataset_file, capsys):
        # Repeatable --tau: one prepared collection, one payload per tau.
        assert main([
            "join", str(dataset_file), "--tau", "1", "--tau", "2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        taus = [q["stats"]["tau"] for q in payload["queries"]]
        assert taus == [1, 2]
        # tau=2 results are a superset of tau=1's.
        pairs1 = {tuple(p[:2]) for p in payload["queries"][0]["pairs"]}
        pairs2 = {tuple(p[:2]) for p in payload["queries"][1]["pairs"]}
        assert pairs1 <= pairs2

    def test_multi_tau_text_output(self, dataset_file, capsys):
        assert main([
            "join", str(dataset_file), "--tau", "1", "--tau", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "PRT(tau=1" in out and "PRT(tau=2" in out

    def test_explain_prints_plan(self, dataset_file, capsys):
        assert main([
            "join", str(dataset_file), "--tau", "1", "--explain",
        ]) == 0
        out = capsys.readouterr().out
        assert "# plan:" in out
        plan_line = next(l for l in out.splitlines() if l.startswith("# plan:"))
        plan = json.loads(plan_line[len("# plan:"):])
        assert plan["kind"] == "join" and plan["tau"] == 1

    def test_explain_in_json_payload(self, dataset_file, capsys):
        assert main([
            "join", str(dataset_file), "--tau", "1", "--json", "--explain",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["method"] == "partsj"


class TestSearchAndTed:
    def test_search(self, dataset_file, capsys):
        first_tree = load_trees(dataset_file)[0].to_bracket()
        assert main([
            "search", str(dataset_file), "--query", first_tree, "--tau", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "0\t0" in out  # tree 0 at distance 0

    def test_multi_query_search_shares_one_session(self, dataset_file, capsys):
        trees = load_trees(dataset_file)
        assert main([
            "search", str(dataset_file),
            "--query", trees[0].to_bracket(),
            "--query", trees[1].to_bracket(),
            "--tau", "0",
        ]) == 0
        captured = capsys.readouterr()
        assert "0\t0" in captured.out  # query 0 found tree 0
        assert "1\t0" in captured.out  # query 1 found tree 1
        assert "# query 0:" in captured.err
        assert "# query 1:" in captured.err

    def test_search_explain(self, dataset_file, capsys):
        trees = load_trees(dataset_file)
        assert main([
            "search", str(dataset_file), "--query", trees[0].to_bracket(),
            "--tau", "1", "--explain",
        ]) == 0
        out = capsys.readouterr().out
        plan_line = next(l for l in out.splitlines() if l.startswith("# plan:"))
        assert json.loads(plan_line[len("# plan:"):])["kind"] == "search"

    def test_ted(self, capsys):
        assert main(["ted", "{a{b}{c}}", "{a{b}}"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_ted_algorithm_flag(self, capsys):
        assert main(["ted", "{a}", "{b}", "--algorithm", "zhang_shasha"]) == 0
        assert capsys.readouterr().out.strip() == "1"


class TestErrors:
    def test_repro_errors_exit_code_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.trees"
        bad.write_text("{oops\n")
        assert main(["stats", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_query_tree(self, dataset_file):
        assert main([
            "search", str(dataset_file), "--query", "{broken", "--tau", "1",
        ]) == 2


class TestPersistenceFlags:
    def test_join_save_then_load_index(self, dataset_file, tmp_path, capsys):
        snapshot = tmp_path / "forest.idx"
        assert main([
            "join", str(dataset_file), "--tau", "2", "--json",
            "--save-index", str(snapshot),
        ]) == 0
        first = capsys.readouterr()
        assert snapshot.exists()
        assert "saved session snapshot" in first.err
        assert main([
            "join", str(dataset_file), "--tau", "2", "--json",
            "--load-index", str(snapshot),
        ]) == 0
        second = capsys.readouterr()
        assert json.loads(second.out)["pairs"] == json.loads(first.out)["pairs"]

    def test_sidecar_auto_discovery(self, dataset_file, capsys):
        sidecar = dataset_file.with_name(dataset_file.name + ".repro-idx")
        assert main([
            "join", str(dataset_file), "--tau", "1", "--json",
            "--save-index", str(sidecar),
        ]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(["join", str(dataset_file), "--tau", "1", "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["pairs"] == cold["pairs"]

    def test_corrupt_sidecar_warns_and_rebuilds(self, dataset_file, capsys):
        import pytest as _pytest

        sidecar = dataset_file.with_name(dataset_file.name + ".repro-idx")
        assert main([
            "join", str(dataset_file), "--tau", "1", "--json",
            "--save-index", str(sidecar),
        ]) == 0
        cold = json.loads(capsys.readouterr().out)
        blob = bytearray(sidecar.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        sidecar.write_bytes(bytes(blob))
        with _pytest.warns(UserWarning, match="rebuilding the session cold"):
            assert main([
                "join", str(dataset_file), "--tau", "1", "--json",
            ]) == 0
        assert json.loads(capsys.readouterr().out)["pairs"] == cold["pairs"]

    def test_search_save_and_load_index(self, dataset_file, tmp_path, capsys):
        trees = load_trees(dataset_file)
        snapshot = tmp_path / "search.idx"
        query = trees[0].to_bracket()
        assert main([
            "search", str(dataset_file), "--query", query, "--tau", "1",
            "--save-index", str(snapshot),
        ]) == 0
        first = capsys.readouterr().out
        assert main([
            "search", str(dataset_file), "--query", query, "--tau", "1",
            "--load-index", str(snapshot),
        ]) == 0
        assert capsys.readouterr().out == first

    def test_stats_snapshot_provenance(self, dataset_file, tmp_path, capsys):
        snapshot = tmp_path / "forest.idx"
        main(["join", str(dataset_file), "--tau", "1",
              "--save-index", str(snapshot)])
        capsys.readouterr()
        assert main(["stats", "--snapshot", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "format v1" in out
        assert "checksums ok" in out
        assert "prep:0" in out

    def test_stats_snapshot_reports_corruption(self, dataset_file, tmp_path,
                                               capsys):
        snapshot = tmp_path / "forest.idx"
        main(["join", str(dataset_file), "--tau", "1",
              "--save-index", str(snapshot)])
        capsys.readouterr()
        blob = bytearray(snapshot.read_bytes())
        blob[-2] ^= 0xFF
        snapshot.write_bytes(bytes(blob))
        assert main(["stats", "--snapshot", str(snapshot)]) == 2
        assert "CORRUPT" in capsys.readouterr().out


class TestStreamWALFlags:
    BRACKETS = "{a{b}{c}}\n{a{b}}\n{a{b}{c{d}}}\n"

    def _run_stream(self, monkeypatch, argv, stdin=""):
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO(stdin))
        return main(argv)

    def test_stream_writes_a_replayable_wal(self, tmp_path, monkeypatch,
                                            capsys):
        from repro.persist import scan_wal

        wal = tmp_path / "arrivals.wal"
        assert self._run_stream(monkeypatch, [
            "join", "--stream", "--tau", "1", "--wal", str(wal),
        ], stdin=self.BRACKETS) == 0
        live = capsys.readouterr().out
        assert scan_wal(wal)["brackets"] == self.BRACKETS.split()
        # Replay the log with nothing new on stdin: same pairs come back.
        assert self._run_stream(monkeypatch, [
            "join", "--stream", "--tau", "1", "--wal", str(wal), "--recover",
        ]) == 0
        captured = capsys.readouterr()
        assert captured.out == live
        assert "recovered 3 trees" in captured.err

    def test_recover_continues_ingesting(self, tmp_path, monkeypatch, capsys):
        from repro.persist import scan_wal

        wal = tmp_path / "arrivals.wal"
        self._run_stream(monkeypatch, [
            "join", "--stream", "--tau", "1", "--wal", str(wal),
        ], stdin=self.BRACKETS)
        capsys.readouterr()
        assert self._run_stream(monkeypatch, [
            "join", "--stream", "--tau", "1", "--wal", str(wal), "--recover",
            "--json",
        ], stdin="{a{b}{c}{d}}\n") == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert lines[0]["recovered"]["records"] == 3
        assert scan_wal(wal)["salvage"]["records"] == 4

    def test_recover_requires_wal(self, monkeypatch, capsys):
        assert self._run_stream(monkeypatch, [
            "join", "--stream", "--tau", "1", "--recover",
        ]) == 2
        assert "--recover needs --wal" in capsys.readouterr().err

    def test_recover_rejects_mismatched_tau(self, tmp_path, monkeypatch,
                                            capsys):
        wal = tmp_path / "arrivals.wal"
        self._run_stream(monkeypatch, [
            "join", "--stream", "--tau", "1", "--wal", str(wal),
        ], stdin=self.BRACKETS)
        capsys.readouterr()
        assert self._run_stream(monkeypatch, [
            "join", "--stream", "--tau", "2", "--wal", str(wal), "--recover",
        ]) == 2
        assert "does not match the recovered log" in capsys.readouterr().err
