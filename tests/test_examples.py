"""The shipped examples must run cleanly end to end.

Each example is imported and its ``main()`` executed with stdout captured;
assertion failures inside the examples (they self-check their joins) fail
the test.  This keeps documentation code from rotting.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart",
    "session_reuse",
    "session_persist",
    "session_observe",
    "session_backend",
    "xml_near_duplicates",
    "rna_motifs",
    "sentence_paraphrases",
    "streaming_service",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_examples_directory_complete():
    present = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart", "session_reuse", "session_persist",
            "session_observe", "xml_near_duplicates", "rna_motifs",
            "sentence_paraphrases", "benchmark_tour"} <= present


def test_quickstart_mentions_its_own_invariants(capsys):
    module = load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "Similarity join" in out
    assert "agrees" in out  # the baseline cross-check ran
