"""Run the doctests embedded in the library's public docstrings."""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.api",
    "repro.rsjoin",
    "repro.search",
    "repro.core.intern",
    "repro.core.join",
    "repro.ted.api",
    "repro.ted.cutoff",
    "repro.ted.string_edit",
    "repro.ted.zhang_shasha",
    "repro.ted.binary_branch",
    "repro.baselines.nested_loop",
    "repro.baselines.str_join",
    "repro.baselines.set_join",
    "repro.baselines.histogram_join",
    "repro.extras.pqgram",
    "repro.tree.lcrs",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"expected doctests in {name}"
    assert result.failed == 0, f"{result.failed} doctest failures in {name}"
